// Standalone SIMD backend equivalence smoke: synthetic leaf runs through
// every compiled-in tile backend, asserting byte-for-byte identical
// counters and identical check/hit totals against the scalar reference.
//
// Deliberately self-contained (only tile_simd.cpp and cpu_features.cpp as
// linked TUs) so CI can also cross-compile it for AArch64 and run it under
// qemu-user as the NEON smoke:
//
//   aarch64-linux-gnu-g++ -O2 -std=c++20 -Isrc tools/simd_smoke.cpp
//     src/hashtree/tile_simd.cpp src/util/cpu_features.cpp
//     src/obs/metrics.cpp -o neon_smoke   (one line)
//   qemu-aarch64 -L /usr/aarch64-linux-gnu ./neon_smoke
//
// Exit 0: all available backends matched scalar. Exit 1: divergence.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "hashtree/tile_simd.hpp"
#include "util/cpu_features.hpp"

using namespace smpmine;

namespace {

/// Deterministic LCG — the smoke must behave identically on every host.
std::uint64_t g_state = 0x9e3779b97f4a7c15ull;
std::uint32_t next_u32(std::uint32_t bound) {
  g_state = g_state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<std::uint32_t>((g_state >> 33) % bound);
}

/// Sorted, unique random transaction over items [0, universe). Length
/// varies 1..max_len so vector tails of every remainder get exercised.
std::vector<item_t> random_txn(std::uint32_t universe,
                               std::uint32_t max_len) {
  const std::uint32_t len = 1 + next_u32(max_len);
  std::vector<bool> present(universe, false);
  for (std::uint32_t i = 0; i < len; ++i) present[next_u32(universe)] = true;
  std::vector<item_t> txn;
  for (std::uint32_t v = 0; v < universe; ++v) {
    if (present[v]) txn.push_back(static_cast<item_t>(v));
  }
  return txn;
}

struct Outcome {
  tilesimd::LeafRunResult result;
  std::vector<count_t> counts;
};

}  // namespace

int main() {
  constexpr std::uint32_t kUniverse = 40;
  constexpr std::uint32_t kMaxLen = 24;
  constexpr std::uint32_t kTxns = 64;
  constexpr std::uint32_t kCands = 32;
  constexpr std::uint32_t kRounds = 50;

  int failures = 0;
  for (std::uint32_t round = 0; round < kRounds; ++round) {
    const std::uint32_t k = 1 + round % 6;

    // Transactions (tile) and frontier entries, one per transaction.
    std::vector<std::vector<item_t>> txns;
    std::vector<const item_t*> tile_ptr;
    std::vector<std::uint32_t> tile_len;
    std::vector<FlatEntry> fr;
    for (std::uint32_t t = 0; t < kTxns; ++t) {
      txns.push_back(random_txn(kUniverse, kMaxLen));
      tile_ptr.push_back(txns.back().data());
      tile_len.push_back(static_cast<std::uint32_t>(txns.back().size()));
      fr.push_back(FlatEntry{0, t, 0});
    }

    // Candidate SoA: k strictly-increasing items per slot. Item id 0 is
    // included on purpose — the AVX2 masked tail must not fake a match
    // against zeroed lanes.
    std::vector<item_t> items(static_cast<std::size_t>(k) * kCands);
    for (std::uint32_t s = 0; s < kCands; ++s) {
      std::uint32_t v = next_u32(kUniverse - 2 * k);
      for (std::uint32_t q = 0; q < k; ++q) {
        items[static_cast<std::size_t>(q) * kCands + s] =
            static_cast<item_t>(v);
        v += 1 + next_u32(2);
      }
    }

    auto run_backend = [&](SimdBackend backend) -> Outcome {
      Outcome out;
      out.counts.assign(kCands, 0);
      tilesimd::LeafRun run{};
      run.items = items.data();
      run.num_cands = kCands;
      run.k = k;
      run.cb = 0;
      run.ce = kCands;
      run.fr = fr.data();
      run.i = 0;
      run.j = kTxns;
      run.tile_ptr = tile_ptr.data();
      run.tile_len = tile_len.data();
      run.mode = CounterMode::PerThread;
      run.counts = nullptr;
      run.locks = nullptr;
      run.local = out.counts.data();
      switch (backend) {
#if defined(__x86_64__)
        case SimdBackend::Avx2:
          out.result = tilesimd::leaf_run_avx2(run);
          break;
#endif
#if defined(__aarch64__)
        case SimdBackend::Neon:
          out.result = tilesimd::leaf_run_neon(run);
          break;
#endif
        default:
          out.result = tilesimd::leaf_run_scalar(run);
          break;
      }
      return out;
    };

    const Outcome scalar = run_backend(SimdBackend::Scalar);
    std::vector<SimdBackend> vec_backends;
#if defined(__x86_64__)
    if (cpu_features().avx2) vec_backends.push_back(SimdBackend::Avx2);
#endif
#if defined(__aarch64__)
    if (cpu_features().neon) vec_backends.push_back(SimdBackend::Neon);
#endif
    if (round == 0 && vec_backends.empty()) {
      std::printf("simd_smoke: no vector backend available on this CPU; "
                  "scalar self-check only\n");
    }
    for (const SimdBackend backend : vec_backends) {
      const Outcome vec = run_backend(backend);
      const bool same =
          vec.result.checks == scalar.result.checks &&
          vec.result.hits == scalar.result.hits &&
          std::memcmp(vec.counts.data(), scalar.counts.data(),
                      kCands * sizeof(count_t)) == 0;
      if (!same) {
        ++failures;
        std::fprintf(stderr,
                     "simd_smoke: round %u k=%u: %s diverges from scalar "
                     "(checks %llu vs %llu, hits %llu vs %llu)\n",
                     round, k, to_string(backend),
                     static_cast<unsigned long long>(vec.result.checks),
                     static_cast<unsigned long long>(scalar.result.checks),
                     static_cast<unsigned long long>(vec.result.hits),
                     static_cast<unsigned long long>(scalar.result.hits));
      }
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "simd_smoke: FAIL (%d divergent rounds)\n",
                 failures);
    return 1;
  }
  std::printf("simd_smoke: OK (%u rounds; cpu: avx2=%d neon=%d)\n",
              kRounds, cpu_features().avx2 ? 1 : 0,
              cpu_features().neon ? 1 : 0);
  return 0;
}
