#!/usr/bin/env python3
"""Self-test for smpmine-lint: drives the linter over the fixture trees in
tests/lint/fixtures (one passing and one violating mini-tree per rule) and
checks both the exit code and that the finding carries the right rule id
and file. Runs the regex backend explicitly so the result is identical on
machines with and without libclang."""

from __future__ import annotations

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(HERE, "smpmine_lint.py")
FIXTURES = os.path.join(ROOT, "tests", "lint", "fixtures")

# fixture dir -> (expected exit, expected rule, expected path fragment)
CASES = {
    "r1_good": (0, None, None),
    "r1_bad": (1, "R1", "src/parallel/widget.hpp"),
    "r1_core_good": (0, None, None),
    "r1_core_bad": (1, "R1", "src/core/sched.hpp"),
    "r1_distmem_good": (0, None, None),
    "r1_distmem_bad": (1, "R1", "src/distmem/queue.hpp"),
    "r2_good": (0, None, None),
    "r2_bad": (1, "R2", "src/core/driver.cpp"),
    "r2_perf_good": (0, None, None),
    "r2_perf_bad": (1, "R2", "src/core/probe.cpp"),
    "r2_signal_good": (0, None, None),
    "r2_signal_bad": (1, "R2", "src/core/trap.cpp"),
    "r2_rusage_good": (0, None, None),
    "r2_rusage_bad": (1, "R2", "src/core/meminfo.cpp"),
    "r3_good": (0, None, None),
    "r3_bad": (1, "R3", "src/parallel/spinlock.hpp"),
    "r4_good": (0, None, None),
    "r4_bad": (1, "R4", "src/hashtree/count.cpp"),
    "r5_good": (0, None, None),
    "r5_bad": (1, "R5", "src/core/miner.cpp"),
    "r5_perf_good": (0, None, None),
    "r5_perf_bad": (1, "R5", "src/core/miner.cpp"),
    "r5_cross_good": (0, None, None),
    "r5_cross_bad": (1, "R5", "src/core/miner.cpp"),
    "r5_multiline_bad": (1, "R5", "src/core/miner.cpp"),
    "r5_ledger_good": (0, None, None),
    "r5_ledger_bad": (1, "R5", "src/core/miner.cpp"),
}


def run_case(name: str, expect_exit: int, rule: str | None,
             path_fragment: str | None) -> list[str]:
    root = os.path.join(FIXTURES, name)
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root, "--backend", "regex"],
        capture_output=True, text=True)
    errors: list[str] = []
    if proc.returncode != expect_exit:
        errors.append(
            f"{name}: exit {proc.returncode}, expected {expect_exit}\n"
            f"  stdout: {proc.stdout.strip()!r}\n"
            f"  stderr: {proc.stderr.strip()!r}")
        return errors
    if rule is not None:
        lines = [l for l in proc.stdout.splitlines() if l.strip()]
        if not any(f" {rule}: " in l for l in lines):
            errors.append(f"{name}: no {rule} finding in output: {lines!r}")
        if path_fragment and not any(path_fragment in l for l in lines):
            errors.append(
                f"{name}: finding does not name {path_fragment}: {lines!r}")
        # Exactly the planted violation, nothing else.
        if len(lines) != 1:
            errors.append(f"{name}: expected exactly 1 finding: {lines!r}")
    return errors


def main() -> int:
    missing = [n for n in CASES if not os.path.isdir(os.path.join(FIXTURES, n))]
    if missing:
        print(f"lint_selftest: missing fixtures: {missing}", file=sys.stderr)
        return 1
    failures: list[str] = []
    for name, (expect_exit, rule, fragment) in sorted(CASES.items()):
        failures.extend(run_case(name, expect_exit, rule, fragment))
    # Rule filtering: --rules must restrict what runs.
    proc = subprocess.run(
        [sys.executable, LINT, "--root", os.path.join(FIXTURES, "r2_bad"),
         "--backend", "regex", "--rules", "R1,R3"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append(
            f"--rules filter still reported disabled rules: "
            f"{proc.stdout.strip()!r}")
    if failures:
        print("lint_selftest: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint_selftest: OK ({len(CASES)} fixtures + rule filter)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
