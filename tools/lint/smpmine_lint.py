#!/usr/bin/env python3
"""smpmine-lint: project-specific static analysis for the smpmine tree.

Rules
-----
R1  guarded-by coverage: in the concurrency-bearing directories
    (src/parallel, src/hashtree, src/obs, src/alloc, src/core,
    src/distmem), a class that owns a
    lock (SpinLock/Mutex/std::mutex member, by value or pointer) must
    annotate every other non-atomic, non-const data member with
    GUARDED_BY/PT_GUARDED_BY — or carry an explicit `lint-ok: R1` marker
    explaining the discipline (phase quiescence, write-once, ...).
    `mutable` members in those directories need the same treatment even in
    lock-free classes: mutability from const paths is how cross-thread
    mutation hides from review.
R2  threading primitives stay in src/parallel: std::thread, std::mutex
    (and friends), and raw pthread_* calls are flagged anywhere else under
    src/. Everything outside src/parallel synchronizes through the
    wrappers (Mutex, SpinLock, Barrier, ThreadPool) so the capability
    annotations and the checked-build lock-order recorder see every lock.
    Likewise the perf syscall surface stays in src/obs/perf: raw
    syscall()/perf_event_open outside that directory bypasses the backend
    selection and per-thread fd lifecycle the perf session manages.
    Likewise the signal surface stays in src/obs/flight: sigaction/
    sigaltstack/std::set_terminate and friends outside that directory
    would fight the flight recorder's crash dumper for the same handlers.
    Likewise the resource-probe surface (getrusage, /proc/self) stays in
    src/obs/perf and src/obs/ledger: the rusage perf backend and the
    telemetry sampler are the two audited readers, and ad-hoc probes
    elsewhere produce numbers that disagree with the manifests. The
    /proc/self token lives inside string literals, so this branch scans
    comment-stripped text with strings kept, unlike the other three.
R3  memory_order_relaxed is allowlisted: only files with an audited reason
    to use it may, and every site needs a `relaxed-ok:` comment on the
    line or just above stating why relaxed ordering is sufficient.
R4  no heap allocation in SMPMINE_HOT functions: functions annotated
    SMPMINE_HOT (the per-transaction counting and subset-enumeration hot
    paths) must not call new/malloc or growing container members. The
    paper's Section 5 placement argument depends on those paths touching
    only pre-placed memory. `hot-ok:` marks a vetted exception.
R5  TRACE_SPAN / PERF_PHASE / LEDGER_WORK names match IterationStats: a
    bare (dot-free) span, perf-phase, or ledger work-unit name must
    correspond to a `<name>_seconds` field in src/core/stats.hpp (plus
    the per-k "iteration" wrapper), so traces, counter attribution, the
    work ledger, and the stats tables never disagree about phase naming.
    Dotted names ("pool.task", "hashtree.remap") are subsystem
    events, exempt. Sites are matched over the joined file text, so an
    invocation whose name string wraps to the next line is still checked.
    SMPMINE_LEDGER_WORK gets its own pattern rather than joining
    PHASE_MACRO: smpmine-analyze consumes the phase-macro sites for its
    scope pairing, and ledger work attributions are point events with no
    RAII variable or family to pair.
    Additionally, when macros from different families (trace / perf /
    flight) name a phase within a couple of lines of each other — the
    idiomatic triple at the top of a phase body — their names must agree:
    a perf scope saying "count" under a flight scope saying "reduce" would
    silently misattribute counters to the wrong phase.

Backends
--------
The default backend is a comment/string-aware regex pass that needs no
third-party packages. When the libclang Python bindings are importable
(`--backend clang` or `--backend auto`), R1 class/member discovery runs on
the real AST instead; every other part (markers, the other rules) is
text-based either way. Any libclang failure falls back to the regex pass
per file, so the tool degrades instead of erroring on machines without a
clang toolchain.

Markers
-------
    // lint-ok: R<n> <reason>   suppress rule n for the next declaration
    // relaxed-ok: <reason>     R3 justification
    // hot-ok: <reason>         R4 exemption
Markers are honored on the offending line or within the few lines above
it. A marker without a reason is itself worth flagging in review.

Exit status: 0 clean, 1 findings, 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Configuration

RULE_IDS = ("R1", "R2", "R3", "R4", "R5")

# Directories (relative to --root) whose classes R1 inspects.
R1_SCOPE = ("src/parallel", "src/hashtree", "src/obs", "src/alloc",
            "src/core", "src/distmem")

# The one directory allowed to use raw threading primitives.
R2_EXEMPT = ("src/parallel",)

# The one directory allowed to open perf events / issue raw syscalls.
R2_PERF_EXEMPT = ("src/obs/perf",)

# The one directory allowed to install signal handlers / terminate hooks:
# the flight recorder owns crash-time dumping, and a second sigaction
# elsewhere would silently replace (or be replaced by) its handlers.
R2_SIGNAL_EXEMPT = ("src/obs/flight",)

# Directories allowed to probe process resources (getrusage, /proc/self):
# the rusage perf backend and the telemetry sampler. Ad-hoc probes
# elsewhere produce numbers that can disagree with what the manifests and
# the telemetry stream report for the same run.
R2_RESOURCE_EXEMPT = ("src/obs/perf", "src/obs/ledger")

# Files audited for relaxed atomics. A site in any other file is a finding
# even if it carries a relaxed-ok comment — extend this list only with an
# audit, not to silence the tool.
R3_ALLOWLIST = (
    "src/parallel/spinlock.hpp",
    "src/parallel/barrier.hpp",
    "src/obs/trace.hpp",
    "src/obs/metrics.hpp",
    "src/obs/flight/flight_recorder.cpp",
    "src/obs/ledger/ledger.hpp",
    "src/obs/ledger/ledger.cpp",
    "src/distmem/channel.hpp",
    "src/util/logging.cpp",
    "src/hashtree/tree_build.cpp",
    "src/hashtree/tree_count.cpp",
    "src/hashtree/tree_count_flat.cpp",
    "src/hashtree/tile_simd.cpp",
    "src/hashtree/tree_count_vertical.cpp",
    "src/hashtree/tree_remap.cpp",
)

STATS_HEADER = "src/core/stats.hpp"

# Span names that are phases but not *_seconds fields: "iteration" is the
# per-k wrapper whose children are the phase spans.
R5_EXTRA_PHASES = ("iteration",)

LOCK_TYPES = re.compile(
    r"\b(SpinLock|Mutex|std::mutex|std::recursive_mutex|std::shared_mutex|"
    r"std::timed_mutex|std::recursive_timed_mutex)\b"
)
# Synchronization primitives other than locks: they are the protection, not
# the protected data, so R1 exempts them without treating the class as
# lock-owning on their account.
SYNC_TYPES = re.compile(
    r"\b(Barrier|std::condition_variable(_any)?|std::counting_semaphore|"
    r"std::binary_semaphore|std::latch|std::barrier)\b"
)
GUARD_ANNOTATIONS = re.compile(r"\b(GUARDED_BY|PT_GUARDED_BY)\s*\(")
CAPABILITY_CLASS = re.compile(r"\b(CAPABILITY\s*\(|SCOPED_CAPABILITY\b)")

R2_TOKENS = re.compile(
    r"\b(std::thread|std::jthread|std::mutex|std::recursive_mutex|"
    r"std::shared_mutex|std::timed_mutex|std::recursive_timed_mutex|"
    r"pthread_[a-z_]+\s*\()"
)

R2_PERF_TOKENS = re.compile(
    r"(\b(?:__NR_)?perf_event_open\b|\bsyscall\s*\()"
)

R2_SIGNAL_TOKENS = re.compile(
    r"\b(sigaction|sigaltstack|sigemptyset|sigaddset|sigfillset|"
    r"sigprocmask|std::signal|std::set_terminate)\b"
)

# Matched against comment-stripped text with string literals KEPT —
# "/proc/self/statm" is a string, invisible in the regular code_lines.
R2_RESOURCE_TOKENS = re.compile(
    r"(\bgetrusage\s*\(|/proc/self)"
)

R4_ALLOC = re.compile(
    r"(\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bstrdup\s*\(|"
    r"\bmake_unique\b|\bmake_shared\b|\bto_string\s*\(|"
    r"\.\s*(push_back|emplace_back|emplace|insert|resize|reserve|assign|"
    r"append)\s*\()"
)

# Phase-naming macro invocations. The name string can sit on a later line
# than the macro token (clang-format wraps long argument lists), so sites
# are found over the joined file text by iter_phase_macro_sites, never by
# a per-line scan — a wrapped invocation must not be skipped silently.
PHASE_MACRO = re.compile(
    r"\b(SMPMINE_(?:TRACE_(?:SPAN_ARG|SPAN|PHASE)|PERF_PHASE|"
    r"FLIGHT_PHASE(?:_NAMED)?))"
    r"\s*\(\s*(?:(\w+)\s*,\s*)?\"([^\"]+)\""
)

# Explicit closers of the RAII-variable forms (TRACE_PHASE/_NAMED scopes
# that outlive their lexical block).
PHASE_MACRO_END = re.compile(
    r"\bSMPMINE_(?:TRACE_PHASE|FLIGHT_PHASE)_END\s*\(\s*(\w+)\s*\)")

PHASE_MACRO_FAMILY = {
    "SMPMINE_TRACE_SPAN": "trace",
    "SMPMINE_TRACE_SPAN_ARG": "trace",
    "SMPMINE_TRACE_PHASE": "trace",
    "SMPMINE_PERF_PHASE": "perf",
    "SMPMINE_FLIGHT_PHASE": "flight",
    "SMPMINE_FLIGHT_PHASE_NAMED": "flight",
}

# Ledger work attribution: SMPMINE_LEDGER_WORK("phase", units). A point
# event, not a scope — kept out of PHASE_MACRO so smpmine-analyze's scope
# pairing never sees it — but its phase name obeys the same R5 vocabulary.
LEDGER_WORK_MACRO = re.compile(
    r"\bSMPMINE_LEDGER_WORK\s*\(\s*\"([^\"]+)\"")

# Two phase macros within this many lines of each other are "the same
# source site" for the cross-family agreement check.
R5_CROSS_WINDOW = 2

MARKER_WINDOW = 4  # lines above the site in which a marker still applies

SOURCE_EXTS = (".hpp", ".cpp", ".h", ".cc", ".cxx", ".hxx")


@dataclass
class Finding:
    path: str  # root-relative
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class SourceFile:
    """One parsed translation unit: raw text for markers, stripped for code."""

    rel: str
    raw_lines: list[str]
    code_lines: list[str] = field(default_factory=list)
    # Comments stripped, string literal contents kept: the R2 resource
    # check looks for "/proc/self", which only exists inside strings.
    text_lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.code_lines = strip_comments_and_strings(self.raw_lines)
        self.text_lines = strip_comments_and_strings(self.raw_lines,
                                                     keep_strings=True)

    def has_marker(self, line_no: int, pattern: re.Pattern[str],
                   window: int = MARKER_WINDOW) -> bool:
        """True if `pattern` appears on raw line `line_no` (1-based) or within
        `window` lines above it."""
        lo = max(0, line_no - 1 - window)
        return any(pattern.search(self.raw_lines[i])
                   for i in range(lo, min(line_no, len(self.raw_lines))))


@dataclass
class PhaseMacroSite:
    """One phase-naming macro invocation (shared with smpmine-analyze)."""

    line: int        # 1-based line of the macro token
    macro: str       # full macro name, e.g. SMPMINE_PERF_PHASE
    family: str      # "trace" | "perf" | "flight"
    var: str | None  # RAII variable of the _NAMED/_PHASE forms, else None
    name: str        # the quoted phase/span name


def iter_phase_macro_sites(raw_lines: list[str]) -> list[PhaseMacroSite]:
    """All phase-macro sites in a file, in source order. Matches over the
    joined text so invocations split across lines (macro token on one line,
    name string on the next) are found; the reported line is the macro
    token's."""
    text = "\n".join(raw_lines)
    sites: list[PhaseMacroSite] = []
    for m in PHASE_MACRO.finditer(text):
        sites.append(PhaseMacroSite(
            line=text.count("\n", 0, m.start()) + 1,
            macro=m.group(1),
            family=PHASE_MACRO_FAMILY[m.group(1)],
            var=m.group(2),
            name=m.group(3)))
    return sites


MARKER_OK = {rule: re.compile(rf"lint-ok:\s*{rule}\b") for rule in RULE_IDS}
MARKER_RELAXED = re.compile(r"relaxed-ok:")
MARKER_HOT = re.compile(r"hot-ok:")


def strip_comments_and_strings(lines: list[str],
                               keep_strings: bool = False) -> list[str]:
    """Blanks out comments and string/char literal contents, preserving the
    line structure so line numbers survive. Good enough for token scanning;
    raw lines remain available for marker lookup. With ``keep_strings`` the
    literal contents survive too (comments still go) — for tokens that live
    inside strings, like procfs paths."""
    out: list[str] = []
    in_block = False
    for line in lines:
        res: list[str] = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                res.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        if keep_strings:
                            res.append(line[i:i + 2])
                        i += 2
                        continue
                    if line[i] == quote:
                        res.append(quote)
                        i += 1
                        break
                    if keep_strings:
                        res.append(line[i])
                    i += 1
                continue
            res.append(ch)
            i += 1
        out.append("".join(res))
    return out


# ---------------------------------------------------------------------------
# Class/member model shared by both backends


@dataclass
class Member:
    name: str
    line: int  # 1-based
    decl: str  # joined declaration text (stripped)
    is_mutable: bool
    is_static: bool
    is_const: bool
    is_atomic: bool
    is_lock: bool
    is_annotated: bool


@dataclass
class ClassInfo:
    name: str
    line: int
    is_capability: bool
    members: list[Member] = field(default_factory=list)

    @property
    def owns_lock(self) -> bool:
        return any(m.is_lock for m in self.members)


ANNOT_MACROS = re.compile(
    r"\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES(_SHARED)?|ACQUIRE(_SHARED)?|"
    r"RELEASE(_SHARED|_GENERIC)?|TRY_ACQUIRE(_SHARED)?|EXCLUDES|"
    r"RETURN_CAPABILITY|ASSERT_CAPABILITY|NO_THREAD_SAFETY_ANALYSIS)\b"
    r"(\s*\([^()]*\))?"
)

SKIP_STMT = re.compile(
    r"^\s*(public|private|protected)\s*:|"
    r"^\s*(using|typedef|friend|static_assert|template|enum)\b"
)

CLASS_DECL = re.compile(r"\b(class|struct)\s+(?:\w+\s+)*?(\w+)[^;{]*\{")


def strip_template_args(text: str) -> str:
    """Removes <...> template argument lists (nesting-aware) so that parens
    inside them don't masquerade as function parameter lists."""
    res: list[str] = []
    depth = 0
    for i, ch in enumerate(text):
        if ch == "<":
            # Heuristic: a '<' directly after an identifier/:: opens a
            # template list; a comparison is surrounded by spaces.
            prev = text[i - 1] if i else ""
            if depth > 0 or prev.isalnum() or prev in "_:>":
                depth += 1
                continue
        if ch == ">" and depth > 0:
            depth -= 1
            continue
        if depth == 0:
            res.append(ch)
    return "".join(res)


def analyze_member_stmt(stmt: str, line: int) -> Member | None:
    """Classifies one class-body statement (text up to ';', braces already
    balanced away). Returns None for anything that is not a data member."""
    # Access-specifier labels end in ':' not ';', so they arrive glued to the
    # member that follows them; peel them off before classifying.
    stmt = re.sub(r"^\s*((public|private|protected)\s*:\s*)+", "", stmt)
    if SKIP_STMT.search(stmt):
        return None
    is_annotated = bool(GUARD_ANNOTATIONS.search(stmt))
    core = ANNOT_MACROS.sub(" ", stmt)
    # Drop initializers: `= ...` and brace-init `{...}` (braces were already
    # flattened by the parser, `= nullptr` etc. remain).
    core = re.sub(r"=.*$", "", core)
    core = strip_template_args(core)
    if "(" in core:
        return None  # function declaration (or constructor etc.)
    is_lock = bool(LOCK_TYPES.search(core))
    toks = core.replace(";", " ").split()
    if not toks:
        return None
    name = toks[-1].lstrip("*&")
    if not re.fullmatch(r"\w+(\[\w*\])?", name) or name in ("operator",):
        return None
    name = re.sub(r"\[\w*\]$", "", name)
    return Member(
        name=name,
        line=line,
        decl=stmt.strip(),
        is_mutable=bool(re.search(r"\bmutable\b", core)),
        is_static=bool(re.search(r"\bstatic\b", core)),
        is_const=bool(re.search(r"\bconst(expr)?\b", core)),
        is_atomic=bool(re.search(r"\b(std::)?atomic(_ref)?\b", core)),
        is_lock=is_lock,
        is_annotated=is_annotated,
    )


def iter_classes_regex(src: SourceFile) -> list[ClassInfo]:
    """Finds class/struct bodies and their data members with a brace-depth
    scanner over the comment-stripped text."""
    classes: list[ClassInfo] = []
    # (class_info, body_depth) — innermost last.
    stack: list[tuple[ClassInfo, int]] = []
    depth = 0
    stmt_parts: list[str] = []
    stmt_line = 0

    for idx, line in enumerate(src.code_lines):
        i = 0
        # Class declarations can open on this line; find them before brace
        # bookkeeping so we know which '{' starts a class body.
        pending: dict[int, ClassInfo] = {}
        for m in CLASS_DECL.finditer(line):
            cap = bool(CAPABILITY_CLASS.search(line))
            pending[m.end() - 1] = ClassInfo(m.group(2), idx + 1, cap)
        while i < len(line):
            ch = line[i]
            if ch == "{":
                if i in pending:
                    stack.append((pending[i], depth + 1))
                depth += 1
                # A '{' inside a class at member level starts a nested body
                # (function/initializer); the statement accumulator must not
                # leak across it.
                if not (stack and depth == stack[-1][1]):
                    stmt_parts, stmt_line = [], 0
            elif ch == "}":
                if stack and depth == stack[-1][1]:
                    classes.append(stack.pop()[0])
                    stmt_parts, stmt_line = [], 0
                depth -= 1
            elif stack and depth == stack[-1][1]:
                if ch == ";":
                    stmt = " ".join("".join(stmt_parts).split())
                    if stmt:
                        member = analyze_member_stmt(stmt, stmt_line or idx + 1)
                        if member is not None:
                            stack[-1][0].members.append(member)
                    stmt_parts, stmt_line = [], 0
                else:
                    if not stmt_parts and not ch.isspace():
                        stmt_line = idx + 1
                    stmt_parts.append(ch)
            i += 1
        if stack and depth == stack[-1][1] and stmt_parts:
            stmt_parts.append(" ")
    return classes


# ---------------------------------------------------------------------------
# Optional libclang backend (AST-accurate R1 class discovery)


def load_libclang():
    try:
        from clang import cindex  # type: ignore

        cindex.Index.create()
        return cindex
    except Exception:
        return None


def iter_classes_clang(cindex, path: str, src: SourceFile) -> list[ClassInfo]:
    """AST-based equivalent of iter_classes_regex. Markers and annotation
    macros are still resolved from source text (the macros expand to nothing
    without -Wthread-safety defines), so only structure comes from the AST."""
    index = cindex.Index.create()
    tu = index.parse(path, args=["-std=c++20", "-fsyntax-only"])
    classes: list[ClassInfo] = []

    def field_member(cursor) -> Member | None:
        line = cursor.location.line
        decl = src.code_lines[line - 1].strip() if line <= len(
            src.code_lines) else ""
        type_spelling = cursor.type.spelling
        return Member(
            name=cursor.spelling,
            line=line,
            decl=decl,
            is_mutable=cursor.is_mutable_field(),
            is_static=False,  # FIELD_DECL excludes statics
            is_const=cursor.type.is_const_qualified(),
            is_atomic="atomic" in type_spelling,
            is_lock=bool(LOCK_TYPES.search(type_spelling)),
            is_annotated=bool(GUARD_ANNOTATIONS.search(decl)),
        )

    def walk(cursor):
        for child in cursor.get_children():
            if child.location.file and os.path.samefile(
                    str(child.location.file), path):
                if child.kind in (cindex.CursorKind.CLASS_DECL,
                                  cindex.CursorKind.STRUCT_DECL):
                    if child.is_definition():
                        line = child.location.line
                        head = src.code_lines[line - 1] if line <= len(
                            src.code_lines) else ""
                        info = ClassInfo(child.spelling, line,
                                         bool(CAPABILITY_CLASS.search(head)))
                        for sub in child.get_children():
                            if sub.kind == cindex.CursorKind.FIELD_DECL:
                                member = field_member(sub)
                                if member is not None:
                                    info.members.append(member)
                        classes.append(info)
                walk(child)

    walk(tu.cursor)
    return classes


# ---------------------------------------------------------------------------
# Rules


def in_scope(rel: str, dirs: tuple[str, ...]) -> bool:
    rel = rel.replace(os.sep, "/")
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


def check_r1(src: SourceFile, classes: list[ClassInfo]) -> list[Finding]:
    findings: list[Finding] = []
    if not in_scope(src.rel, R1_SCOPE):
        return findings
    for cls in classes:
        if cls.is_capability:
            continue  # the class *is* the lock
        for m in cls.members:
            if m.is_static or m.is_atomic or m.is_lock or m.is_annotated:
                continue
            if SYNC_TYPES.search(m.decl):
                continue
            needs = (cls.owns_lock and not m.is_const) or m.is_mutable
            if not needs:
                continue
            if src.has_marker(m.line, MARKER_OK["R1"]):
                continue
            why = ("mutable member"
                   if m.is_mutable and not cls.owns_lock else
                   f"member of lock-owning class '{cls.name}'")
            findings.append(Finding(
                src.rel, m.line, "R1",
                f"field '{m.name}' ({why}) has no GUARDED_BY/PT_GUARDED_BY "
                f"annotation and no 'lint-ok: R1' justification"))
    return findings


def check_r2(src: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    if not src.rel.replace(os.sep, "/").startswith("src/"):
        return findings
    in_parallel = in_scope(src.rel, R2_EXEMPT)
    in_perf = in_scope(src.rel, R2_PERF_EXEMPT)
    in_signal = in_scope(src.rel, R2_SIGNAL_EXEMPT)
    in_resource = in_scope(src.rel, R2_RESOURCE_EXEMPT)
    for idx, line in enumerate(src.code_lines):
        if line.lstrip().startswith("#"):
            continue  # includes are fine; usage is what leaks primitives
        m = None if in_parallel else R2_TOKENS.search(line)
        if m is not None and not src.has_marker(idx + 1, MARKER_OK["R2"]):
            findings.append(Finding(
                src.rel, idx + 1, "R2",
                f"raw threading primitive '{m.group(1).strip()}' outside "
                f"src/parallel — use Mutex/SpinLock/ThreadPool wrappers (or "
                f"justify with 'lint-ok: R2')"))
            continue
        p = None if in_perf else R2_PERF_TOKENS.search(line)
        if p is not None and not src.has_marker(idx + 1, MARKER_OK["R2"]):
            findings.append(Finding(
                src.rel, idx + 1, "R2",
                f"raw perf syscall '{p.group(1).strip()}' outside "
                f"src/obs/perf — go through obs::perf so backend selection "
                f"and fd lifecycle stay centralized (or justify with "
                f"'lint-ok: R2')"))
            continue
        s = None if in_signal else R2_SIGNAL_TOKENS.search(line)
        if s is not None and not src.has_marker(idx + 1, MARKER_OK["R2"]):
            findings.append(Finding(
                src.rel, idx + 1, "R2",
                f"signal API '{s.group(1).strip()}' outside src/obs/flight "
                f"— the flight recorder owns the crash handlers; a second "
                f"sigaction would silently replace them (or justify with "
                f"'lint-ok: R2')"))
            continue
        # Resource probes hide in string literals ("/proc/self/statm"), so
        # this branch scans the strings-kept text, not the code line.
        t = (None if in_resource
             else R2_RESOURCE_TOKENS.search(src.text_lines[idx]))
        if t is not None and not src.has_marker(idx + 1, MARKER_OK["R2"]):
            findings.append(Finding(
                src.rel, idx + 1, "R2",
                f"resource probe '{t.group(1).strip()}' outside "
                f"src/obs/perf and src/obs/ledger — rusage/procfs sampling "
                f"goes through the perf rusage backend or the telemetry "
                f"sampler so ad-hoc numbers cannot disagree with the "
                f"manifests (or justify with 'lint-ok: R2')"))
    return findings


def check_r3(src: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    if not src.rel.replace(os.sep, "/").startswith("src/"):
        return findings
    allowed = src.rel.replace(os.sep, "/") in R3_ALLOWLIST
    for idx, line in enumerate(src.code_lines):
        if "memory_order_relaxed" not in line:
            continue
        if not allowed:
            findings.append(Finding(
                src.rel, idx + 1, "R3",
                "memory_order_relaxed in a file outside the audited "
                "allowlist (tools/lint/smpmine_lint.py R3_ALLOWLIST)"))
        elif not src.has_marker(idx + 1, MARKER_RELAXED):
            findings.append(Finding(
                src.rel, idx + 1, "R3",
                "memory_order_relaxed without a 'relaxed-ok:' comment "
                "stating why relaxed ordering is sufficient"))
    return findings


def hot_function_bodies(src: SourceFile):
    """Yields (start_line, end_line, name) for each SMPMINE_HOT function
    definition: from the token to the matching close of its body brace."""
    n = len(src.code_lines)
    idx = 0
    while idx < n:
        line = src.code_lines[idx]
        if "SMPMINE_HOT" not in line or line.lstrip().startswith("#"):
            idx += 1
            continue
        name_m = re.search(r"(\w+)\s*\(", line[line.find("SMPMINE_HOT"):])
        name = name_m.group(1) if name_m else "?"
        depth = 0
        seen_open = False
        j = idx
        while j < n:
            for ch in src.code_lines[j]:
                if ch == "{":
                    depth += 1
                    seen_open = True
                elif ch == "}":
                    depth -= 1
            if seen_open and depth <= 0:
                break
            if not seen_open and ";" in src.code_lines[j]:
                break  # declaration only, no body
            j += 1
        yield idx + 1, min(j, n - 1) + 1, name
        idx = j + 1


def check_r4(src: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for start, end, name in hot_function_bodies(src):
        for line_no in range(start, end + 1):
            code = src.code_lines[line_no - 1]
            m = R4_ALLOC.search(code)
            if m is None:
                continue
            if src.has_marker(line_no, MARKER_HOT, window=2):
                continue
            findings.append(Finding(
                src.rel, line_no, "R4",
                f"heap allocation ('{m.group(0).strip()}') inside "
                f"SMPMINE_HOT function '{name}' — hot paths must touch "
                f"only pre-placed memory (or justify with 'hot-ok:')"))
    return findings


def load_phases(root: str) -> set[str] | None:
    path = os.path.join(root, STATS_HEADER)
    if not os.path.isfile(path):
        return None
    with open(path, encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    phases = set(re.findall(r"\bdouble\s+(\w+)_seconds\s*=", text))
    phases.update(R5_EXTRA_PHASES)
    return phases


def check_r5(src: SourceFile, phases: set[str] | None) -> list[Finding]:
    findings: list[Finding] = []
    if phases is None:
        return findings
    # Dotted names are subsystem events, not phases; they take part in
    # neither the vocabulary check nor the cross-family agreement check.
    sites = [s for s in iter_phase_macro_sites(src.raw_lines)
             if "." not in s.name]
    for s in sites:
        if s.name in phases:
            continue
        if src.has_marker(s.line, MARKER_OK["R5"]):
            continue
        findings.append(Finding(
            src.rel, s.line, "R5",
            f"trace/perf phase '{s.name}' matches no <phase>_seconds "
            f"field in {STATS_HEADER} — phase names must agree between "
            f"traces, perf attribution, and IterationStats"))
    # Ledger work attributions share the vocabulary: a misspelled name is
    # worse than a missing one, because the ledger silently records
    # nothing for unknown phases and the work-unit column reads as zero.
    text = "\n".join(src.raw_lines)
    for m in LEDGER_WORK_MACRO.finditer(text):
        name = m.group(1)
        if "." in name or name in phases:
            continue
        line = text.count("\n", 0, m.start()) + 1
        if src.has_marker(line, MARKER_OK["R5"]):
            continue
        findings.append(Finding(
            src.rel, line, "R5",
            f"ledger work phase '{name}' matches no <phase>_seconds field "
            f"in {STATS_HEADER} — SMPMINE_LEDGER_WORK on an unknown phase "
            f"records nothing and the work-unit column silently reads 0"))
    # Cross-family agreement: the trace/perf/flight macros opening one
    # phase body sit on adjacent lines; different families within the
    # window must name the same phase or counters/trace/flight dumps
    # attribute the same work to different phases.
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            if b.line - a.line > R5_CROSS_WINDOW:
                break
            if a.family == b.family or a.name == b.name:
                continue
            if (src.has_marker(a.line, MARKER_OK["R5"]) or
                    src.has_marker(b.line, MARKER_OK["R5"])):
                continue
            findings.append(Finding(
                src.rel, b.line, "R5",
                f"phase name mismatch at one site: {a.macro} names "
                f"'{a.name}' (line {a.line}) but {b.macro} names "
                f"'{b.name}' — the trace/perf/flight macro families must "
                f"agree about the phase they instrument"))
    return findings


# ---------------------------------------------------------------------------
# Driver


def collect_files(root: str, paths: list[str]) -> list[str]:
    rels: list[str] = []
    bases = paths or ["src"]
    for base in bases:
        absolute = os.path.join(root, base)
        if os.path.isfile(absolute):
            rels.append(os.path.relpath(absolute, root))
            continue
        for dirpath, _dirnames, filenames in os.walk(absolute):
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    rels.append(
                        os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(set(rels))


def default_root() -> str:
    # tools/lint/smpmine_lint.py -> repo root two levels up.
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="smpmine-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=default_root(),
                        help="project root (default: repo containing this "
                             "script)")
    parser.add_argument("--backend", choices=("auto", "regex", "clang"),
                        default="auto",
                        help="R1 class discovery backend (default: auto — "
                             "libclang when importable, else regex)")
    parser.add_argument("--rules", default=",".join(RULE_IDS),
                        help="comma-separated subset of rules to run")
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to --root "
                             "(default: src)")
    args = parser.parse_args(argv)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    bad = [r for r in rules if r not in RULE_IDS]
    if bad:
        print(f"smpmine-lint: unknown rule(s): {', '.join(bad)}",
              file=sys.stderr)
        return 2
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"smpmine-lint: no such root: {root}", file=sys.stderr)
        return 2

    cindex = None
    if args.backend in ("auto", "clang"):
        cindex = load_libclang()
        if cindex is None and args.backend == "clang":
            print("smpmine-lint: libclang bindings unavailable; "
                  "falling back to the regex backend", file=sys.stderr)

    phases = load_phases(root) if "R5" in rules else None
    findings: list[Finding] = []
    for rel in collect_files(root, args.paths):
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                raw = fh.read().splitlines()
        except OSError as err:
            print(f"smpmine-lint: cannot read {rel}: {err}", file=sys.stderr)
            return 2
        src = SourceFile(rel=rel, raw_lines=raw)
        classes: list[ClassInfo] = []
        if "R1" in rules and in_scope(rel, R1_SCOPE):
            if cindex is not None:
                try:
                    classes = iter_classes_clang(cindex, path, src)
                except Exception:
                    classes = iter_classes_regex(src)
            else:
                classes = iter_classes_regex(src)
        if "R1" in rules:
            findings.extend(check_r1(src, classes))
        if "R2" in rules:
            findings.extend(check_r2(src))
        if "R3" in rules:
            findings.extend(check_r3(src))
        if "R4" in rules:
            findings.extend(check_r4(src))
        if "R5" in rules:
            findings.extend(check_r5(src, phases))

    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f.render())
    if findings:
        print(f"smpmine-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
