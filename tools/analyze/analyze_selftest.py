#!/usr/bin/env python3
"""Self-test for smpmine-analyze: drives the analyzer over the fixture
trees in tests/analyze/fixtures (a passing and a violating mini-tree per
check) and asserts the exit code plus a distinguishing fragment of the
finding, so each check is proven to fire on its negative fixture and stay
quiet on its positive one. Runs the regex backend explicitly so the result
is identical on machines with and without libclang."""

from __future__ import annotations

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
ANALYZE = os.path.join(HERE, "smpmine_analyze.py")
FIXTURES = os.path.join(ROOT, "tests", "analyze", "fixtures")

# fixture dir -> (expected exit, stdout fragment or None, extra args)
CASES = {
    "classify_good": (0, None, ["--checks", "classify"]),
    "classify_bad": (
        1, "unprotected shared field 'Counter::value_'",
        ["--checks", "classify"]),
    "classify_infer_bad": (
        1, "suggested patch: `std::uint64_t value_ = 0 GUARDED_BY(mu_);`",
        ["--checks", "classify"]),
    "classify_wrong_lock_bad": (
        1, "wrong-lock access: 'Counter::value_'",
        ["--checks", "classify"]),
    "spmd_good": (0, None, ["--checks", "classify"]),
    "spmd_bad": (
        1, "unprotected shared field 'Accumulator::total_' "
           "(written from an SPMD-reachable method)",
        ["--checks", "classify"]),
    "order_good": (0, None, ["--checks", "lock-order"]),
    "order_cycle_bad": (
        1, "lock-order cycle in the merged graph",
        ["--checks", "lock-order"]),
    "order_new_edge_bad": (
        1, "lock-order edge Pair::a_ -> Pair::b_",
        ["--checks", "lock-order"]),
    "order_interproc_bad": (
        1, "(via grab_b)",
        ["--checks", "lock-order"]),
    "order_runtime_cycle_bad": (
        1, "lock-order cycle in the merged graph",
        ["--checks", "lock-order",
         "--runtime-dump", "{root}/runtime/lock_order.1.json"]),
    "suppress_nojust_bad": (2, None, []),
    "phase_effects_good": (
        0, None,
        ["--checks", "phase-effects",
         "--runtime-effects", "{root}/runtime/phase_effects.1.json"]),
    "phase_effects_bad": (
        1, "frozen-tree contract: 'FrozenTree::num_nodes_' is written in "
           "phase 'count'",
        ["--checks", "phase-effects"]),
    "phase_undeclared_bad": (
        1, "is not in the phase-effects baseline",
        ["--checks", "phase-effects"]),
}


def run_case(name: str, expect_exit: int, fragment: str | None,
             extra: list[str]) -> list[str]:
    root = os.path.join(FIXTURES, name)
    args = [sys.executable, ANALYZE, "--root", root, "--backend", "regex"]
    args += [a.format(root=root) for a in extra]
    proc = subprocess.run(args, capture_output=True, text=True)
    errors: list[str] = []
    if proc.returncode != expect_exit:
        errors.append(
            f"{name}: exit {proc.returncode}, expected {expect_exit}\n"
            f"  stdout: {proc.stdout.strip()!r}\n"
            f"  stderr: {proc.stderr.strip()!r}")
        return errors
    if fragment is not None and fragment not in proc.stdout:
        errors.append(
            f"{name}: expected fragment missing from output\n"
            f"  wanted: {fragment!r}\n"
            f"  stdout: {proc.stdout.strip()!r}")
    if expect_exit == 0 and "finding" in proc.stdout:
        errors.append(f"{name}: positive fixture produced findings:\n"
                      f"  {proc.stdout.strip()!r}")
    return errors


def check_update_baseline() -> list[str]:
    """--update-baseline on the new-edge fixture must write the edge and
    make a rerun clean; the fixture's checked-in baseline is restored."""
    import json
    root = os.path.join(FIXTURES, "order_new_edge_bad")
    baseline = os.path.join(root, "tools", "analyze",
                            "lock_order.baseline.json")
    with open(baseline, encoding="utf-8") as fh:
        original = fh.read()
    errors: list[str] = []
    try:
        proc = subprocess.run(
            [sys.executable, ANALYZE, "--root", root, "--backend", "regex",
             "--checks", "lock-order", "--update-baseline"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append(f"--update-baseline failed: {proc.stdout!r}")
        with open(baseline, encoding="utf-8") as fh:
            doc = json.load(fh)
        pairs = {(e["from"], e["to"]) for e in doc.get("edges", [])}
        if ("Pair::a_", "Pair::b_") not in pairs:
            errors.append(
                f"--update-baseline did not record the edge: {pairs!r}")
        proc = subprocess.run(
            [sys.executable, ANALYZE, "--root", root, "--backend", "regex",
             "--checks", "lock-order"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append(
                f"rerun after --update-baseline not clean: {proc.stdout!r}")
    finally:
        with open(baseline, "w", encoding="utf-8") as fh:
            fh.write(original)
    return errors


def check_runtime_only_warns() -> list[str]:
    """An ACYCLIC runtime-only edge absent from the baseline warns
    (coverage depends on which tests ran) but must not fail the gate —
    unlike a static edge, which does."""
    root = os.path.join(FIXTURES, "order_good")
    proc = subprocess.run(
        [sys.executable, ANALYZE, "--root", root, "--backend", "regex",
         "--checks", "lock-order", "--runtime-dump",
         os.path.join(root, "runtime", "lock_order.2.json")],
        capture_output=True, text=True)
    errors: list[str] = []
    if proc.returncode != 0:
        errors.append(
            f"runtime-only acyclic edge failed the gate (exit "
            f"{proc.returncode}); it should only warn:\n"
            f"  stdout: {proc.stdout.strip()!r}\n"
            f"  stderr: {proc.stderr.strip()!r}")
    elif "Zeta::z_ -> Omega::w_" not in proc.stderr:
        errors.append(
            f"runtime-only edge produced no warning: {proc.stderr!r}")
    # The dump also carries kind-fallback edges (anonymous locks), one of
    # them a SpinLock -> SpinLock self-loop: those names are not
    # equivalence classes and must be skipped, not reported as a cycle
    # or warned about.
    if "SpinLock" in proc.stderr or "Mutex" in proc.stderr:
        errors.append(
            f"kind-fallback runtime edges leaked into the merge: "
            f"{proc.stderr!r}")
    return errors


def check_effects_update_baseline() -> list[str]:
    """The phase-effects --update-baseline flow: recording the undeclared
    hazard must still fail (its why is empty), writing a justification
    must make the rerun clean; the fixture's checked-in baseline is
    restored."""
    import json
    root = os.path.join(FIXTURES, "phase_undeclared_bad")
    baseline = os.path.join(root, "tools", "analyze",
                            "phase_effects.baseline.json")
    with open(baseline, encoding="utf-8") as fh:
        original = fh.read()
    errors: list[str] = []
    base_args = [sys.executable, ANALYZE, "--root", root, "--backend",
                 "regex", "--checks", "phase-effects"]
    try:
        proc = subprocess.run(base_args + ["--update-baseline"],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append(
                f"effects --update-baseline failed: {proc.stdout!r}")
        proc = subprocess.run(base_args, capture_output=True, text=True)
        if proc.returncode != 1 or \
                "no written justification" not in proc.stdout:
            errors.append(
                f"recorded hazard with an empty why must still fail: exit "
                f"{proc.returncode}, stdout {proc.stdout.strip()!r}")
        with open(baseline, encoding="utf-8") as fh:
            doc = json.load(fh)
        for h in doc.get("hazards", []):
            h["why"] = "selftest: master-serial handoff"
        with open(baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
        proc = subprocess.run(base_args, capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append(
                f"justified baseline not clean: {proc.stdout.strip()!r}")
    finally:
        with open(baseline, "w", encoding="utf-8") as fh:
            fh.write(original)
    return errors


def check_effects_runtime_warns() -> list[str]:
    """A runtime-observed epoch write the baseline does not cover warns
    (coverage depends on which tests ran) but must not fail the gate."""
    root = os.path.join(FIXTURES, "phase_effects_good")
    proc = subprocess.run(
        [sys.executable, ANALYZE, "--root", root, "--backend", "regex",
         "--checks", "phase-effects", "--runtime-effects",
         os.path.join(root, "runtime", "phase_effects.2.json")],
        capture_output=True, text=True)
    errors: list[str] = []
    if proc.returncode != 0:
        errors.append(
            f"unknown runtime-only effect failed the gate (exit "
            f"{proc.returncode}); it should only warn:\n"
            f"  stdout: {proc.stdout.strip()!r}\n"
            f"  stderr: {proc.stderr.strip()!r}")
    elif "runtime-observed write of 'FrozenTree::structure'" \
            not in proc.stderr:
        errors.append(
            f"unknown runtime effect produced no warning: {proc.stderr!r}")
    return errors


def check_backend_agreement() -> tuple[list[str], bool]:
    """When the libclang bindings are importable, the clang backend must
    agree with the regex backend on every fixture's exit code. Skipped
    (not failed) where the bindings are absent — the container images
    don't all carry them."""
    sys.path.insert(0, os.path.join(ROOT, "tools", "lint"))
    import smpmine_lint
    if smpmine_lint.load_libclang() is None:
        return [], False
    errors: list[str] = []
    for name, (expect_exit, _, extra) in sorted(CASES.items()):
        root = os.path.join(FIXTURES, name)
        args = [sys.executable, ANALYZE, "--root", root,
                "--backend", "clang"]
        args += [a.format(root=root) for a in extra]
        proc = subprocess.run(args, capture_output=True, text=True)
        if proc.returncode != expect_exit:
            errors.append(
                f"backend disagreement on {name}: clang exit "
                f"{proc.returncode}, regex/expected {expect_exit}\n"
                f"  stdout: {proc.stdout.strip()!r}")
    return errors, True


def main() -> int:
    missing = [n for n in CASES
               if not os.path.isdir(os.path.join(FIXTURES, n))]
    if missing:
        print(f"analyze_selftest: missing fixtures: {missing}",
              file=sys.stderr)
        return 1
    failures: list[str] = []
    for name, (expect_exit, fragment, extra) in sorted(CASES.items()):
        failures.extend(run_case(name, expect_exit, fragment, extra))
    failures.extend(check_update_baseline())
    failures.extend(check_runtime_only_warns())
    failures.extend(check_effects_update_baseline())
    failures.extend(check_effects_runtime_warns())
    backend_failures, clang_ran = check_backend_agreement()
    failures.extend(backend_failures)
    if failures:
        print("analyze_selftest: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    backends = "both backends" if clang_ran else "regex backend only"
    print(f"analyze_selftest: OK ({len(CASES)} fixtures + baseline "
          f"round-trips + runtime merges; {backends})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
