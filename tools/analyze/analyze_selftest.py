#!/usr/bin/env python3
"""Self-test for smpmine-analyze: drives the analyzer over the fixture
trees in tests/analyze/fixtures (a passing and a violating mini-tree per
check) and asserts the exit code plus a distinguishing fragment of the
finding, so each check is proven to fire on its negative fixture and stay
quiet on its positive one. Runs the regex backend explicitly so the result
is identical on machines with and without libclang."""

from __future__ import annotations

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
ANALYZE = os.path.join(HERE, "smpmine_analyze.py")
FIXTURES = os.path.join(ROOT, "tests", "analyze", "fixtures")

# fixture dir -> (expected exit, stdout fragment or None, extra args)
CASES = {
    "classify_good": (0, None, ["--checks", "classify"]),
    "classify_bad": (
        1, "unprotected shared field 'Counter::value_'",
        ["--checks", "classify"]),
    "classify_infer_bad": (
        1, "suggested patch: `std::uint64_t value_ = 0 GUARDED_BY(mu_);`",
        ["--checks", "classify"]),
    "classify_wrong_lock_bad": (
        1, "wrong-lock access: 'Counter::value_'",
        ["--checks", "classify"]),
    "spmd_good": (0, None, ["--checks", "classify"]),
    "spmd_bad": (
        1, "unprotected shared field 'Accumulator::total_' "
           "(written from an SPMD-reachable method)",
        ["--checks", "classify"]),
    "order_good": (0, None, ["--checks", "lock-order"]),
    "order_cycle_bad": (
        1, "lock-order cycle in the merged graph",
        ["--checks", "lock-order"]),
    "order_new_edge_bad": (
        1, "lock-order edge Pair::a_ -> Pair::b_",
        ["--checks", "lock-order"]),
    "order_interproc_bad": (
        1, "(via grab_b)",
        ["--checks", "lock-order"]),
    "order_runtime_cycle_bad": (
        1, "lock-order cycle in the merged graph",
        ["--checks", "lock-order",
         "--runtime-dump", "{root}/runtime/lock_order.1.json"]),
    "suppress_nojust_bad": (2, None, []),
}


def run_case(name: str, expect_exit: int, fragment: str | None,
             extra: list[str]) -> list[str]:
    root = os.path.join(FIXTURES, name)
    args = [sys.executable, ANALYZE, "--root", root, "--backend", "regex"]
    args += [a.format(root=root) for a in extra]
    proc = subprocess.run(args, capture_output=True, text=True)
    errors: list[str] = []
    if proc.returncode != expect_exit:
        errors.append(
            f"{name}: exit {proc.returncode}, expected {expect_exit}\n"
            f"  stdout: {proc.stdout.strip()!r}\n"
            f"  stderr: {proc.stderr.strip()!r}")
        return errors
    if fragment is not None and fragment not in proc.stdout:
        errors.append(
            f"{name}: expected fragment missing from output\n"
            f"  wanted: {fragment!r}\n"
            f"  stdout: {proc.stdout.strip()!r}")
    if expect_exit == 0 and "finding" in proc.stdout:
        errors.append(f"{name}: positive fixture produced findings:\n"
                      f"  {proc.stdout.strip()!r}")
    return errors


def check_update_baseline() -> list[str]:
    """--update-baseline on the new-edge fixture must write the edge and
    make a rerun clean; the fixture's checked-in baseline is restored."""
    import json
    root = os.path.join(FIXTURES, "order_new_edge_bad")
    baseline = os.path.join(root, "tools", "analyze",
                            "lock_order.baseline.json")
    with open(baseline, encoding="utf-8") as fh:
        original = fh.read()
    errors: list[str] = []
    try:
        proc = subprocess.run(
            [sys.executable, ANALYZE, "--root", root, "--backend", "regex",
             "--checks", "lock-order", "--update-baseline"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append(f"--update-baseline failed: {proc.stdout!r}")
        with open(baseline, encoding="utf-8") as fh:
            doc = json.load(fh)
        pairs = {(e["from"], e["to"]) for e in doc.get("edges", [])}
        if ("Pair::a_", "Pair::b_") not in pairs:
            errors.append(
                f"--update-baseline did not record the edge: {pairs!r}")
        proc = subprocess.run(
            [sys.executable, ANALYZE, "--root", root, "--backend", "regex",
             "--checks", "lock-order"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append(
                f"rerun after --update-baseline not clean: {proc.stdout!r}")
    finally:
        with open(baseline, "w", encoding="utf-8") as fh:
            fh.write(original)
    return errors


def check_runtime_only_warns() -> list[str]:
    """An ACYCLIC runtime-only edge absent from the baseline warns
    (coverage depends on which tests ran) but must not fail the gate —
    unlike a static edge, which does."""
    root = os.path.join(FIXTURES, "order_good")
    proc = subprocess.run(
        [sys.executable, ANALYZE, "--root", root, "--backend", "regex",
         "--checks", "lock-order", "--runtime-dump",
         os.path.join(root, "runtime", "lock_order.2.json")],
        capture_output=True, text=True)
    errors: list[str] = []
    if proc.returncode != 0:
        errors.append(
            f"runtime-only acyclic edge failed the gate (exit "
            f"{proc.returncode}); it should only warn:\n"
            f"  stdout: {proc.stdout.strip()!r}\n"
            f"  stderr: {proc.stderr.strip()!r}")
    elif "Zeta::z_ -> Omega::w_" not in proc.stderr:
        errors.append(
            f"runtime-only edge produced no warning: {proc.stderr!r}")
    # The dump also carries kind-fallback edges (anonymous locks), one of
    # them a SpinLock -> SpinLock self-loop: those names are not
    # equivalence classes and must be skipped, not reported as a cycle
    # or warned about.
    if "SpinLock" in proc.stderr or "Mutex" in proc.stderr:
        errors.append(
            f"kind-fallback runtime edges leaked into the merge: "
            f"{proc.stderr!r}")
    return errors


def main() -> int:
    missing = [n for n in CASES
               if not os.path.isdir(os.path.join(FIXTURES, n))]
    if missing:
        print(f"analyze_selftest: missing fixtures: {missing}",
              file=sys.stderr)
        return 1
    failures: list[str] = []
    for name, (expect_exit, fragment, extra) in sorted(CASES.items()):
        failures.extend(run_case(name, expect_exit, fragment, extra))
    failures.extend(check_update_baseline())
    failures.extend(check_runtime_only_warns())
    if failures:
        print("analyze_selftest: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"analyze_selftest: OK ({len(CASES)} fixtures + baseline "
          f"round-trip + runtime merge)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
