#!/usr/bin/env python3
"""smpmine-analyze: whole-program concurrency analysis for the smpmine tree.

Where smpmine-lint (tools/lint) checks annotation *presence* per file, this
tool checks the *discipline*: which fields are actually shared, what
actually protects them, and in which order locks actually nest — across the
whole program, statically, before any test executes an interleaving.

Checks
------
classify    Shared-state classification. Every data member of every class
            under src/ is placed in a lattice (most- to least-protected):

                lock > sync > const > atomic > guarded > partitioned
                     > read_shared > suppressed > unshared > UNPROTECTED

            `lock`/`sync` are the protection, not the protected data.
            `partitioned` covers state that is per-thread by construction
            (indexed by a thread/shard id at every access site, or a
            cache-line-aligned *Shard* type). `read_shared` is reachable
            from an SPMD parallel phase but never written by any
            SPMD-reachable method — the frozen-structure pattern (build on
            the master, read in the phase). `unshared` means the class
            neither owns a lock nor is reachable from an SPMD parallel
            phase, so no cross-thread story is required. `UNPROTECTED` is a
            finding: a field that is written from a parallel phase, or
            lives in a lock-owning class, or is `mutable`, with no
            annotation and no audited justification.

            On top of the lattice two lockset checks run over method
            bodies (tracking RAII guards, manual lock()/unlock() and
            REQUIRES entry sets):

              * inference — an unprotected field whose every access sits
                under one consistent lock gets a suggested GUARDED_BY
                patch in the finding text;
              * wrong-lock — an access of a GUARDED_BY(X) field in a
                method that neither holds X nor declares REQUIRES(X)
                (constructors/destructors are exempt: initialization
                precedes publication).

lock-order  Static acquisition-order graph. Within every non-capability
            function body, constructing guard B while guard A is held
            records the edge name(A) -> name(B); the same propagates
            through the (name-based, over-approximated) call graph, so
            "insert holds the node lock and calls an allocator that takes
            the arena lock" yields HTNode::lock -> Region::mu_ without any
            test executing it. Runtime graphs dumped by the checked-build
            recorder (SMPMINE_LOCK_ORDER_DUMP, see
            src/parallel/lock_order.hpp) merge into the same name space.
            The union is persisted as the baseline
            (tools/analyze/lock_order.baseline.json); the gate fails on

              * any cycle in the static, runtime, or merged graph
                (a name-level self-edge counts: two instances of one lock
                class nested with no instance-order protocol), and
              * any static edge missing from the baseline (run with
                --update-baseline to accept deliberate new nestings).

            Runtime-only edges missing from the baseline warn but do not
            fail: they depend on which tests ran.

phase-effects
            Per-phase transitive read/write/freeze sets and the implied
            phase dependency graph. Every TRACE_SPAN / PERF_PHASE /
            FLIGHT_PHASE body in the miners opens a phase scope; the call
            sites and field accesses lexically inside it seed a closure
            over the call graph (typed receiver->method resolution where a
            local's type is known, bare names elsewhere, constructor calls
            through make_unique<T>/optional<T>::emplace/`T v(...);`), and
            every field the closure reads or writes is attributed to the
            phase. Constructor writes count — freeze *is* the FrozenTree
            constructor. From the sets the check derives:

              * the freeze set of each phase (fields it writes that later
                phases only read — the frozen-structure pattern),
              * the phase dependency graph (edge A -> B when B reads what
                A writes, labeled with the witness fields), and
              * cross-phase hazards: a field written by two phases
                (write/write) or written by one and read by another
                (write/read).

            A hazard needs a protection story: a protected lattice class
            (lock/sync/const/atomic/guarded/partitioned), the frozen-tree
            contract below, a `phase-ok: <why>` marker on the field, a
            `phase <Class::member>: <why>` suppression, or an entry with a
            written justification in the baseline
            (tools/analyze/phase_effects.baseline.json). The gate fails on
            hazards with none of these, on hazard phases the baseline does
            not cover (a *new* cross-phase write or read), and on baseline
            entries whose justification is empty.

            The frozen-tree contract is checked explicitly: after freeze
            (the constructor) the FrozenTree CSR/SoA arrays are read-only
            — only the counters may be written, and only in freeze, count,
            and reduce (thaw publishes them back in reduce). The same
            contract is enforced at runtime by the SMPMINE_CHECKED
            phase-epoch validator (src/util/phase_epoch.hpp), whose
            SMPMINE_PHASE_EPOCH_DUMP files merge into the baseline via
            --runtime-effects: runtime-observed writes the baseline does
            not know warn (coverage depends on which tests ran), exactly
            like runtime-only lock-order edges.

Lock naming
-----------
Locks are identified as `OwningClass::member`. A guard expression resolves
through, in order: local variable/parameter declarations in the enclosing
function (`HTNode* node; ... SpinLockGuard g(node->lock)`), the enclosing
class of the method (bare `mu_`), and finally a unique owner among all
known lock members. Unresolvable expressions become `?::member` and are
reported — name them or suppress them, never ignore them silently.

Suppressions
------------
Two mechanisms, both requiring a written justification:

  * in-source markers on/above the field declaration: `analyze-ok: <why>`
    (and the existing `lint-ok: R1 <why>` markers, which already carry the
    discipline) suppress classification findings for that field;
  * the central file (default tools/analyze/suppressions.txt), one
    directive per line:
        field <Class::member>: <why>     suppress a classification finding
        lock <name>: <why>               drop a lock from the order graph
        phase <Class::member>: <why>     accept a cross-phase hazard
    A directive with an empty justification is itself an error.

Backends
--------
Class/member discovery reuses the smpmine-lint plumbing: libclang when the
Python bindings are importable (--backend clang|auto), a comment- and
string-aware regex pass otherwise. Body analysis (locksets, guards, call
graph) is text-based in both backends, exactly like the lint's markers.

Exit status: 0 clean, 1 findings, 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from collections import defaultdict
from dataclasses import dataclass, field

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "lint"))
import smpmine_lint as lint  # noqa: E402  (PR 3 backend plumbing)

# ---------------------------------------------------------------------------
# Configuration

DEFAULT_SUPPRESSIONS = "tools/analyze/suppressions.txt"
DEFAULT_BASELINE = "tools/analyze/lock_order.baseline.json"
DEFAULT_EFFECTS_BASELINE = "tools/analyze/phase_effects.baseline.json"

# Directories under --root that the classify check walks.
ANALYZE_SCOPE = ("src",)

# Directories whose classes' fields the phase-effects check reports on.
# util/ and bench/ helpers are reachable from phases but hold no mining
# state; restricting the report keeps the baseline about the algorithm.
PHASE_EFFECT_SCOPE = ("src/core", "src/hashtree", "src/parallel", "src/alloc")

# Canonical phase order from the paper's per-iteration pipeline; phases the
# analyzer discovers beyond these sort after, in first-seen order.
PHASE_ORDER = ("f1", "candgen", "remap", "freeze", "vertbuild", "count",
               "reduce", "select")

# Instrumented scopes that are not phases: the per-iteration wrapper span.
NON_PHASE_NAMES = frozenset({"iteration"})

# Lattice classes that already carry a cross-phase protection story; a
# hazard on such a field needs no extra baseline entry. `suppressed` is
# deliberately absent: a classification suppression silences the *sharing*
# finding, not the phase-ordering question.
PROTECTED_CLASSES = frozenset({"lock", "sync", "const", "atomic", "guarded",
                               "partitioned"})

# The frozen-tree contract (mirrors src/util/phase_epoch.hpp's declared
# epochs): every FrozenTree field is written only in freeze (the
# constructor), except the counter plane, which count accumulates into and
# reduce reads back out (thaw_counts).
FROZEN_CONTRACT_CLASS = "FrozenTree"
FROZEN_CONTRACT_WRITERS = ("freeze",)
FROZEN_CONTRACT_OVERRIDES = {"counts_": ("freeze", "count", "reduce")}

MARKER_PHASE_OK = re.compile(r"phase-ok:\s*\S")

# Guard types that acquire their constructor argument (RAII).
GUARD_DECL = re.compile(
    r"\b(SpinLockGuard|MutexLock|std::lock_guard|std::unique_lock|"
    r"std::scoped_lock)\b(?:\s*<[^<>]*>)?\s+(\w+)\s*[({]([^;]*?)[)}]\s*;")

# Manual acquire/release on a lock expression (outside capability classes
# these are rare and deliberate; the recorder sees them at runtime, the
# static graph must too).
MANUAL_LOCK = re.compile(r"([\w\.\->\[\]\*]+?)\s*(?:\.|->)\s*lock\s*\(\s*\)")
MANUAL_UNLOCK = re.compile(
    r"([\w\.\->\[\]\*]+?)\s*(?:\.|->)\s*unlock\s*\(\s*\)")

REQUIRES_ATTR = re.compile(r"\bREQUIRES(?:_SHARED)?\s*\(([^()]*)\)")
NO_TSA = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b")
GUARDED_BY_ATTR = re.compile(r"\b(?:PT_)?GUARDED_BY\s*\(([^()]*)\)")

# SPMD parallel-phase seeds: lambda bodies handed to these entry points run
# on every worker thread.
SPMD_DISPATCH = re.compile(r"\b(run_spmd|parallel_for_blocked)\s*\(")

# Identifier names that mark an index expression as thread-partitioning.
PARTITION_INDEX = re.compile(
    r"^\s*(tid|t|thread|thread_id|worker|worker_id|shard|shard_id|node|"
    r"node_id|self)\s*$")

# Types that are per-thread sharded by construction.
PARTITIONED_TYPES = re.compile(r"\bHistogramShard\b|\bthread_local\b")

# Callee names never followed through the call graph: lock primitives are
# modeled as acquisition events, the rest are std/container noise whose
# names collide with real methods.
CALL_STOPLIST = frozenset({
    "lock", "unlock", "try_lock", "lock_acquire", "unlock_release",
    "size", "empty", "begin", "end", "data", "get", "reset", "release",
    "push_back", "emplace_back", "pop_back", "front", "back", "at",
    "insert", "erase", "find", "count", "clear", "resize", "reserve",
    "load", "store", "exchange", "fetch_add", "fetch_sub", "wait",
    "notify_one", "notify_all", "min", "max", "move", "swap", "str",
})

MARKER_ANALYZE_OK = re.compile(r"analyze-ok:\s*\S")
MARKER_LINT_R1 = re.compile(r"lint-ok:\s*R1\b\s*\S")

SELF_SUFFIX = "(self-edge: two instances of one lock class nested)"


@dataclass
class Finding:
    path: str
    line: int
    check: str  # "classify" | "lock-order"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.check}: {self.message}"


# ---------------------------------------------------------------------------
# Suppressions


@dataclass
class Suppressions:
    fields: dict[str, str] = field(default_factory=dict)  # Class::member -> why
    locks: dict[str, str] = field(default_factory=dict)   # lock name -> why
    phases: dict[str, str] = field(default_factory=dict)  # Class::member -> why
    errors: list[str] = field(default_factory=list)
    used: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: str) -> "Suppressions":
        sup = cls()
        if not os.path.isfile(path):
            return sup
        with open(path, encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                m = re.match(r"(field|lock|phase)\s+(\S+)\s*:\s*(.*)", line)
                if m is None:
                    sup.errors.append(
                        f"{path}:{lineno}: unparseable directive: {line!r}")
                    continue
                kind, name, why = m.group(1), m.group(2), m.group(3).strip()
                if not why:
                    sup.errors.append(
                        f"{path}:{lineno}: suppression for {name!r} has no "
                        f"written justification")
                    continue
                {"field": sup.fields, "lock": sup.locks,
                 "phase": sup.phases}[kind][name] = why
        return sup

    def field_ok(self, qualified: str) -> bool:
        if qualified in self.fields:
            self.used.add(f"field {qualified}")
            return True
        return False

    def lock_ok(self, name: str) -> bool:
        if name in self.locks:
            self.used.add(f"lock {name}")
            return True
        return False

    def phase_ok(self, qualified: str) -> bool:
        if qualified in self.phases:
            self.used.add(f"phase {qualified}")
            return True
        return False


# ---------------------------------------------------------------------------
# Function model: bodies, guards, accesses, calls


@dataclass
class LockEvent:
    name: str      # resolved lock name (Class::member or ?::member)
    line: int
    depth: int     # brace depth at acquisition (guards release below it)
    manual: bool = False


@dataclass
class CallSite:
    callee: str
    line: int
    held: tuple[str, ...]  # innermost last
    recv: str | None = None  # receiver's class when a local's type is known
    phase: str = ""          # innermost enclosing phase scope, "" outside


@dataclass
class FieldAccess:
    member: str
    line: int
    held: tuple[str, ...]
    in_ctor: bool
    is_write: bool
    fn_name: str = ""
    phase: str = ""          # innermost enclosing phase scope, "" outside
    rel: str = ""            # file the access appears in (may be the .cpp)


@dataclass
class FuncInfo:
    key: str              # "Class::name@file:line" (unique)
    name: str             # bare name
    cls: str | None       # enclosing class, if a method
    rel: str
    line: int
    end_line: int = 0
    entry_locks: tuple[str, ...] = ()
    no_tsa: bool = False
    is_capability_member: bool = False
    acquires: list[LockEvent] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    accesses: list[FieldAccess] = field(default_factory=list)
    spmd_seed: bool = False
    # static order edges recorded inside this body: (from, to, line)
    edges: list[tuple[str, str, int]] = field(default_factory=list)


WRITE_AFTER = re.compile(
    r"^\s*(\[[^\]]*\]\s*)*"
    r"((?<![=!<>])=(?!=)|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|\+\+|--|"
    r"(?:\.|->)\s*(push_back|emplace_back|emplace|pop_back|insert|erase|"
    r"clear|resize|reserve|assign|append|swap)\s*\()")
WRITE_BEFORE = re.compile(r"(\+\+|--)\s*$")
# Wrapping an lvalue in std::atomic_ref is (in this tree) always a prelude
# to fetch_add/store on it — the wrapped expression is a mutation site even
# when the fetch_add lands on the next physical line.
WRITE_ATOMIC_REF = re.compile(
    r"\batomic_ref\s*(?:<[^<>]*>)?\s*(?:\w+\s*)?\(\s*$")


def is_write_site(line: str, start: int, end: int) -> bool:
    """Heuristic mutation test for an identifier occurrence: assignment or
    compound assignment following it (through optional indexing), inc/dec on
    either side, a mutating container method call, or an atomic_ref wrap."""
    return bool(WRITE_AFTER.match(line[end:]) or
                WRITE_BEFORE.search(line[:start]) or
                WRITE_ATOMIC_REF.search(line[:start]))


# ---------------------------------------------------------------------------
# Lock-name resolution

LOCAL_DECL = re.compile(
    r"\b(?:const\s+)?(\w+)\s*[&*]\s*(\w+)\s*(?:=|;|,|\))")


class LockResolver:
    """Resolves a guard-argument expression to a symbolic lock name."""

    def __init__(self, lock_members: dict[str, list[str]]):
        # member name -> owning classes (classes with a lock member so named)
        self.lock_members = lock_members

    def resolve(self, expr: str, enclosing_class: str | None,
                local_types: dict[str, str]) -> str:
        expr = expr.strip().lstrip("*&").strip()
        # std::unique_lock/std::lock_guard ctor args may carry a second
        # argument (std::defer_lock etc.) — the lock is the first.
        expr = expr.split(",")[0].strip()
        expr = re.sub(r"\[[^\]]*\]", "", expr)  # locks_[s] -> locks_
        m = re.match(r"(\w+)\s*(?:\.|->)\s*(\w+)$", expr)
        if m is not None:
            obj, member = m.group(1), m.group(2)
            obj_type = local_types.get(obj)
            if obj_type is not None and member in self.lock_members and \
                    obj_type in self.lock_members[member]:
                return f"{obj_type}::{member}"
            owners = self.lock_members.get(member, [])
            if len(owners) == 1:
                return f"{owners[0]}::{member}"
            if obj == "this" and enclosing_class is not None:
                return f"{enclosing_class}::{member}"
            return f"?::{member}"
        if re.fullmatch(r"\w+", expr):
            owners = self.lock_members.get(expr, [])
            if enclosing_class is not None and enclosing_class in owners:
                return f"{enclosing_class}::{expr}"
            if len(owners) == 1:
                return f"{owners[0]}::{expr}"
            if enclosing_class is not None:
                # A bare name in a method body is almost always the member
                # even if discovery missed the class (template, nesting).
                return f"{enclosing_class}::{expr}"
            return f"?::{expr}"
        return f"?::{expr}" if expr else "?::<empty>"


# ---------------------------------------------------------------------------
# Body parser

# By-value local of a class type: `HashTree tree(cfg, policy, arenas);`.
# Constructing a known class is a call to its constructor — freeze IS the
# FrozenTree constructor, so these sites anchor the phase-effects closure.
VALUE_DECL = re.compile(r"^\s*(?:const\s+)?([A-Z]\w*)\s+(\w+)\s*[({]")

# Locals whose type hides inside a wrapper template: optional<FrozenTree>,
# vector<unique_ptr<PlacementArenas>>, ... — the innermost identifier
# before the closing '>'s is the interesting type.
WRAPPED_DECL = re.compile(
    r"\b(?:std::)?(?:optional|unique_ptr|shared_ptr|vector|array|deque)\s*"
    r"<[^;=({]*?(\w+)\s*>+\s*[&*]?\s*(\w+)\s*[;={(]")

# Heap/in-place construction of a named type.
CTOR_CALL = re.compile(
    r"\b(?:make_(?:unique|shared)\s*<\s*(?:std::)?(\w+)|new\s+(\w+)\s*[({])")

# obj.meth( / obj[i]->meth( — when obj's type is known the callee resolves
# to Class::meth exactly, which lets stoplisted names through for known
# receivers (`arenas.reset()` is PlacementArenas::reset, not noise).
METHOD_CALL = re.compile(
    r"\b(\w+)\s*(?:\[[^\]]*\]\s*)?(?:\.|->)\s*(\w+)\s*\(")

# emplace/emplace_back/push_back on a wrapper of a known class construct
# that class in place.
EMPLACE_METHODS = frozenset({"emplace", "emplace_back", "push_back"})


def parse_file_functions(src: lint.SourceFile,
                         classes: list[lint.ClassInfo],
                         capability_classes: set[str],
                         resolver: LockResolver,
                         member_names: dict[str, set[str]]) -> list[FuncInfo]:
    """Extracts function bodies with guard scopes, lock events, field
    accesses, call sites and phase scopes. One pass over the
    comment-stripped text with a brace-depth scanner (the same idiom as the
    lint's class walker). `member_names` is the program-wide class->members
    map so out-of-line .cpp method bodies record their accesses too."""
    funcs: list[FuncInfo] = []
    n = len(src.code_lines)
    depth = 0
    # Class-body tracking so inline methods get an enclosing class.
    class_stack: list[tuple[str, int]] = []  # (name, body_depth)
    pending_class: dict[int, str] = {}

    cur: FuncInfo | None = None
    cur_body_depth = 0
    guard_stack: list[LockEvent] = []
    local_types: dict[str, str] = {}
    head_buf: list[str] = []   # statement text accumulated outside bodies
    head_start = 0

    # Phase scopes: the lint's joined-text scanner finds every phase macro
    # site (including invocations clang-format split across lines); RAII
    # forms close with their brace, var forms close at the matching _END
    # (with the brace as a safety net — the RAII object cannot outlive its
    # lexical scope either way).
    sites_by_line: dict[int, list] = defaultdict(list)
    for site in lint.iter_phase_macro_sites(src.raw_lines):
        if "." in site.name or site.name in NON_PHASE_NAMES:
            continue
        sites_by_line[site.line].append(site)
    phase_stack: list[tuple[str, int, str | None]] = []  # (name, depth, var)

    def held_names(fn: FuncInfo) -> tuple[str, ...]:
        return tuple(list(fn.entry_locks) +
                     [ev.name for ev in guard_stack])

    def open_function(cls_name: str | None, fn_name: str, line: int,
                      head_text: str) -> FuncInfo:
        info = FuncInfo(
            key=f"{cls_name or ''}::{fn_name}@{src.rel}:{line}",
            name=fn_name, cls=cls_name, rel=src.rel, line=line)
        req: list[str] = []
        for m in REQUIRES_ATTR.finditer(head_text):
            for part in m.group(1).split(","):
                name = resolver.resolve(part, cls_name, {})
                req.append(name)
        info.entry_locks = tuple(req)
        info.no_tsa = bool(NO_TSA.search(head_text))
        info.is_capability_member = cls_name in capability_classes
        # Constructor member-init lists write their members; without these
        # the fields a constructor publishes (freeze IS the FrozenTree
        # constructor) would look never-written to the phase-effects sets.
        if cls_name is not None and fn_name == cls_name and \
                cls_name in member_names:
            close = head_text.find(")")
            init_list = head_text[close + 1:] if close >= 0 else ""
            for im in re.finditer(r"[:,]\s*(\w+)\s*[({]", init_list):
                if im.group(1) in member_names[cls_name]:
                    info.accesses.append(FieldAccess(
                        im.group(1), line, (), True, True, fn_name,
                        rel=src.rel))
        return info

    def record_acquire(fn: FuncInfo, name: str, line: int,
                       manual: bool) -> None:
        held = held_names(fn)
        if held:
            fn.edges.append((held[-1], name, line))
        guard_stack.append(LockEvent(name, line, depth, manual))
        fn.acquires.append(LockEvent(name, line, depth, manual))

    def scan_body_line(fn: FuncInfo, line: str, lineno: int) -> None:
        cur_phase = phase_stack[-1][0] if phase_stack else ""
        # Local declarations feed expression->type resolution.
        for dm in LOCAL_DECL.finditer(line):
            type_name, var = dm.group(1), dm.group(2)
            if type_name not in ("return", "const", "auto", "static"):
                local_types.setdefault(var, type_name)
        for wm in WRAPPED_DECL.finditer(line):
            local_types.setdefault(wm.group(2), wm.group(1))
        # RAII guards.
        for gm in GUARD_DECL.finditer(line):
            name = resolver.resolve(gm.group(3), fn.cls, local_types)
            record_acquire(fn, name, lineno, manual=False)
        # Manual lock()/unlock() pairs on resolvable expressions.
        for mm in MANUAL_LOCK.finditer(line):
            name = resolver.resolve(mm.group(1), fn.cls, local_types)
            record_acquire(fn, name, lineno, manual=True)
        for um in MANUAL_UNLOCK.finditer(line):
            name = resolver.resolve(um.group(1), fn.cls, local_types)
            for i in range(len(guard_stack) - 1, -1, -1):
                if guard_stack[i].name == name and guard_stack[i].manual:
                    del guard_stack[i]
                    break
        held = held_names(fn)
        # Constructions of known classes are constructor calls: by-value
        # locals, make_unique/make_shared/new, and emplace into a wrapper.
        for vm in VALUE_DECL.finditer(line):
            type_name, var = vm.group(1), vm.group(2)
            if type_name in member_names:
                local_types.setdefault(var, type_name)
                fn.calls.append(CallSite(type_name, lineno, held,
                                         recv=type_name, phase=cur_phase))
        for cm in CTOR_CALL.finditer(line):
            type_name = cm.group(1) or cm.group(2)
            if type_name in member_names:
                fn.calls.append(CallSite(type_name, lineno, held,
                                         recv=type_name, phase=cur_phase))
        # Typed method calls: when the receiver's class is known the callee
        # resolves exactly, bypassing the name stoplist.
        for tm in METHOD_CALL.finditer(line):
            recv_cls = local_types.get(tm.group(1))
            if recv_cls is None or recv_cls not in member_names:
                continue
            meth = tm.group(2)
            if meth in EMPLACE_METHODS:
                fn.calls.append(CallSite(recv_cls, lineno, held,
                                         recv=recv_cls, phase=cur_phase))
            else:
                fn.calls.append(CallSite(meth, lineno, held,
                                         recv=recv_cls, phase=cur_phase))
        # Call sites (identifier followed by '(' that isn't a keyword).
        for cm in re.finditer(r"\b(\w+)\s*\(", line):
            callee = cm.group(1)
            if callee in CALL_STOPLIST or callee in (
                    "if", "for", "while", "switch", "return", "sizeof",
                    "assert", "static_cast", "reinterpret_cast",
                    "const_cast", "dynamic_cast", "alignof", "new",
                    "catch", "defined"):
                continue
            fn.calls.append(CallSite(callee, lineno, held, phase=cur_phase))
        # Field accesses of the enclosing class's members (bare or this->).
        if fn.cls is not None and fn.cls in member_names:
            is_ctor = fn.name in (fn.cls, f"~{fn.cls}")
            for am in re.finditer(r"(?:\bthis\s*->\s*)?\b(\w+)\b", line):
                word = am.group(1)
                if word in member_names[fn.cls]:
                    fn.accesses.append(FieldAccess(
                        word, lineno, held, is_ctor,
                        is_write_site(line, am.start(1), am.end(1)),
                        fn.name, phase=cur_phase, rel=src.rel))

    idx = 0
    while idx < n:
        line = src.code_lines[idx]
        lineno = idx + 1
        # The function whose body text appears on this line — survives a
        # close brace mid-line so single-line bodies (`int f() { ...; }`)
        # still get scanned below.
        line_fn: FuncInfo | None = cur
        # Class declarations opening on this line (for inline methods).
        for m in lint.CLASS_DECL.finditer(line):
            pending_class[m.end() - 1] = m.group(2)

        i = 0
        while i < len(line):
            ch = line[i]
            if ch == "{":
                if cur is None:
                    if i in pending_class:
                        class_stack.append((pending_class.pop(i), depth + 1))
                        head_buf, head_start = [], 0
                    else:
                        head_text = " ".join("".join(head_buf).split())
                        # The declarator name is the identifier before the
                        # FIRST paren once template argument lists are gone
                        # (a std::function<void(...)> parameter type would
                        # otherwise masquerade as the function).
                        head_core = lint.strip_template_args(head_text)
                        paren = head_core.find("(")
                        fm = None
                        if paren >= 0:
                            fm = re.search(r"(?:(\w+)\s*::\s*)?(~?\w+)\s*$",
                                           head_core[:paren])
                        looks_like_fn = (
                            fm is not None and
                            fm.group(2) not in (
                                "if", "for", "while", "switch", "do",
                                "else", "return", "catch", "sizeof",
                                "alignof", "defined") and
                            not re.search(r"^\s*(if|for|while|switch|do|"
                                          r"else|namespace|enum|union)\b",
                                          head_core) and
                            not re.search(r"\b(namespace|enum)\s+\w*\s*$",
                                          head_core) and
                            "=" not in head_core[:paren])
                        if looks_like_fn:
                            cls_name = fm.group(1)
                            if cls_name is None and class_stack:
                                cls_name = class_stack[-1][0]
                            cur = open_function(cls_name, fm.group(2),
                                                head_start or lineno,
                                                head_text)
                            line_fn = cur
                            cur_body_depth = depth + 1
                            guard_stack = []
                            local_types = {}
                            # Parameters contribute local types.
                            for dm in LOCAL_DECL.finditer(head_text):
                                if dm.group(1) not in ("return", "const"):
                                    local_types.setdefault(dm.group(2),
                                                           dm.group(1))
                        head_buf, head_start = [], 0
                depth += 1
            elif ch == "}":
                depth -= 1
                while phase_stack and phase_stack[-1][1] > depth:
                    phase_stack.pop()
                if cur is not None:
                    while guard_stack and guard_stack[-1].depth > depth:
                        guard_stack.pop()
                    if depth < cur_body_depth:
                        cur.end_line = lineno
                        funcs.append(cur)
                        cur = None
                        guard_stack = []
                if class_stack and depth < class_stack[-1][1]:
                    class_stack.pop()
            elif cur is None:
                if ch == ";":
                    head_buf, head_start = [], 0
                else:
                    if not head_buf and not ch.isspace():
                        head_start = lineno
                    head_buf.append(ch)
            i += 1

        for site in sites_by_line.get(lineno, ()):
            phase_stack.append((site.name, depth, site.var))
        if line_fn is not None:
            scan_body_line(line_fn, line, lineno)
        for em in lint.PHASE_MACRO_END.finditer(src.raw_lines[idx]):
            var = em.group(1)
            for j in range(len(phase_stack) - 1, -1, -1):
                if phase_stack[j][2] == var:
                    del phase_stack[j]
                    break
        idx += 1
    return funcs


# ---------------------------------------------------------------------------
# Whole-program model


@dataclass
class Program:
    root: str
    classes: dict[str, lint.ClassInfo] = field(default_factory=dict)
    class_file: dict[str, str] = field(default_factory=dict)
    funcs: list[FuncInfo] = field(default_factory=list)
    sources: dict[str, lint.SourceFile] = field(default_factory=dict)
    capability_classes: set[str] = field(default_factory=set)
    lock_members: dict[str, list[str]] = field(default_factory=dict)


def discover_classes(root: str, rels: list[str], backend: str):
    """Two-pass load: classes first (the lock-member registry feeds name
    resolution), bodies second."""
    cindex = lint.load_libclang() if backend in ("auto", "clang") else None
    if cindex is None and backend == "clang":
        print("smpmine-analyze: libclang bindings unavailable; using the "
              "regex backend", file=sys.stderr)
    prog = Program(root=root)
    per_file_classes: dict[str, list[lint.ClassInfo]] = {}
    for rel in rels:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                raw = fh.read().splitlines()
        except OSError as err:
            raise RuntimeError(f"cannot read {rel}: {err}") from err
        src = lint.SourceFile(rel=rel, raw_lines=raw)
        prog.sources[rel] = src
        classes = None
        if cindex is not None:
            try:
                classes = lint.iter_classes_clang(cindex, path, src)
            except Exception:
                classes = None
        if classes is None:
            classes = lint.iter_classes_regex(src)
        per_file_classes[rel] = classes
        for cls in classes:
            prog.classes[cls.name] = cls
            prog.class_file[cls.name] = rel
            head = src.code_lines[cls.line - 1] if cls.line <= len(
                src.code_lines) else ""
            if cls.is_capability or lint.CAPABILITY_CLASS.search(head):
                prog.capability_classes.add(cls.name)
            for m in cls.members:
                if m.is_lock:
                    prog.lock_members.setdefault(m.name, [])
                    if cls.name not in prog.lock_members[m.name]:
                        prog.lock_members[m.name].append(cls.name)
    return prog, per_file_classes


def build_program(root: str, rels: list[str], backend: str) -> Program:
    prog, per_file = discover_classes(root, rels, backend)
    resolver = LockResolver(prog.lock_members)
    member_names = {c.name: {m.name for m in c.members}
                    for c in prog.classes.values()}
    for rel, classes in per_file.items():
        prog.funcs.extend(parse_file_functions(
            prog.sources[rel], classes, prog.capability_classes, resolver,
            member_names))
    return prog


# ---------------------------------------------------------------------------
# SPMD reachability


def spmd_seed_functions(prog: Program) -> set[str]:
    """Call names invoked from inside run_spmd/parallel_for_blocked lambda
    bodies, plus the functions containing those dispatches (the lambda body
    is scanned as part of its enclosing function here — captures make the
    enclosing frame's state reachable anyway)."""
    seeds: set[str] = set()
    for fn in prog.funcs:
        src = prog.sources[fn.rel]
        lo = fn.line - 1
        hi = min(len(src.code_lines), fn.end_line or lo + 1)
        for i in range(lo, hi):
            if SPMD_DISPATCH.search(src.code_lines[i]):
                fn.spmd_seed = True
                seeds.add(fn.name)
                break
    return seeds


def reachable_functions(prog: Program, seeds: set[str]) -> set[str]:
    """Name-level closure over the call graph. Over-approximate (names
    collide across classes) — which is the right direction for a gate."""
    defined: dict[str, list[FuncInfo]] = defaultdict(list)
    for fn in prog.funcs:
        defined[fn.name].append(fn)
    reach: set[str] = set()
    work = [name for name in seeds if name in defined]
    while work:
        name = work.pop()
        if name in reach:
            continue
        reach.add(name)
        for fn in defined[name]:
            for call in fn.calls:
                if call.callee in defined and call.callee not in reach:
                    work.append(call.callee)
    return reach


def spmd_classes(prog: Program, reach: set[str]) -> set[str]:
    return {fn.cls for fn in prog.funcs
            if fn.cls is not None and fn.name in reach}


# ---------------------------------------------------------------------------
# classify check


LATTICE = ("lock", "sync", "const", "atomic", "guarded", "partitioned",
           "read_shared", "suppressed", "unshared", "UNPROTECTED")


@dataclass
class FieldVerdict:
    cls: str
    member: lint.Member
    rel: str
    classification: str
    detail: str = ""


def classify_fields(prog: Program, sup: Suppressions,
                    reach: set[str]) -> tuple[list[FieldVerdict],
                                              list[Finding]]:
    verdicts: list[FieldVerdict] = []
    findings: list[Finding] = []
    shared_cls = spmd_classes(prog, reach)

    # member accesses grouped by (class, member) for lockset reasoning.
    accesses: dict[tuple[str, str], list[FieldAccess]] = defaultdict(list)
    for fn in prog.funcs:
        if fn.cls is None or fn.is_capability_member:
            continue
        for acc in fn.accesses:
            accesses[(fn.cls, acc.member)].append(acc)

    for cls_name, cls in sorted(prog.classes.items()):
        rel = prog.class_file[cls_name]
        if not lint.in_scope(rel, ANALYZE_SCOPE):
            continue
        src = prog.sources[rel]
        owns_lock = cls.owns_lock
        is_spmd = cls_name in shared_cls

        for m in cls.members:
            qualified = f"{cls_name}::{m.name}"

            def verdict(kind: str, detail: str = "") -> None:
                verdicts.append(FieldVerdict(cls_name, m, rel, kind, detail))

            if m.is_lock or cls_name in prog.capability_classes:
                verdict("lock")
                continue
            if lint.SYNC_TYPES.search(m.decl):
                verdict("sync")
                continue
            if m.is_const and not m.is_mutable:
                verdict("const")
                continue
            if m.is_atomic:
                verdict("atomic")
                continue
            if m.is_annotated or GUARDED_BY_ATTR.search(m.decl):
                verdict("guarded")
                continue
            if PARTITIONED_TYPES.search(m.decl):
                verdict("partitioned", "sharded type")
                continue
            accs = accesses.get((cls_name, m.name), [])
            if accs and is_partitioned_by_access(prog, cls_name, m, accs):
                verdict("partitioned", "all accesses indexed by thread id")
                continue
            if src.has_marker(m.line, MARKER_ANALYZE_OK) or \
                    src.has_marker(m.line, MARKER_LINT_R1):
                verdict("suppressed", "in-source marker")
                continue
            if sup.field_ok(qualified):
                verdict("suppressed", sup.fields[qualified])
                continue
            written_in_phase = any(
                a.is_write and not a.in_ctor and a.fn_name in reach
                for a in accs)
            needs_story = ((owns_lock and not m.is_const) or m.is_mutable or
                           written_in_phase)
            if not needs_story:
                if is_spmd:
                    verdict("read_shared", "no SPMD-reachable writes")
                else:
                    verdict("unshared")
                continue

            # UNPROTECTED — build the most useful finding we can.
            why = []
            if owns_lock:
                why.append(f"class '{cls_name}' owns a lock")
            if written_in_phase:
                why.append("written from an SPMD-reachable method")
            if m.is_mutable:
                why.append("mutable")
            suggestion = infer_guard(accs)
            msg = (f"unprotected shared field '{qualified}' "
                   f"({'; '.join(why)}) — annotate, partition, or suppress "
                   f"with a justification")
            if suggestion is not None:
                msg += (f"; every access holds {suggestion} — suggested "
                        f"patch: `{m.decl.rstrip(';')} "
                        f"GUARDED_BY({suggestion.split('::')[-1]});`")
            verdict("UNPROTECTED", msg)
            findings.append(Finding(rel, m.line, "classify", msg))

    # wrong-lock: annotated fields accessed without their lock.
    findings.extend(check_wrong_lock(prog))
    return verdicts, findings


def is_partitioned_by_access(prog: Program, cls_name: str, m: lint.Member,
                             accs: list[FieldAccess]) -> bool:
    """True when every non-constructor access of the member in the class's
    method bodies is an indexed access whose index is a thread/shard id."""
    saw_indexed = False
    for acc in accs:
        if acc.in_ctor:
            continue
        src = prog.sources[acc.rel or prog.class_file[cls_name]]
        line = src.code_lines[acc.line - 1]
        for am in re.finditer(rf"\b{re.escape(m.name)}\b\s*(\[([^\]]*)\])?",
                              line):
            if am.group(1) is None:
                return False
            if not PARTITION_INDEX.match(am.group(2) or ""):
                return False
            saw_indexed = True
    return saw_indexed


def infer_guard(accs: list[FieldAccess]) -> str | None:
    """The one lock held at every (non-ctor) access, if any."""
    locksets = [set(a.held) for a in accs if not a.in_ctor]
    if not locksets:
        return None
    common = set.intersection(*locksets)
    common = {c for c in common if not c.startswith("?::")}
    if len(common) == 1:
        return next(iter(common))
    return None


def check_wrong_lock(prog: Program) -> list[Finding]:
    findings: list[Finding] = []
    guards: dict[tuple[str, str], str] = {}
    for cls_name, cls in prog.classes.items():
        for m in cls.members:
            gm = GUARDED_BY_ATTR.search(m.decl)
            if gm is not None:
                guards[(cls_name, m.name)] = gm.group(1).strip()
    for fn in prog.funcs:
        if fn.cls is None or fn.no_tsa or fn.is_capability_member:
            continue
        for acc in fn.accesses:
            lock_expr = guards.get((fn.cls, acc.member))
            if lock_expr is None or acc.in_ctor:
                continue
            want = f"{fn.cls}::{lock_expr}"
            held_ok = any(
                h == want or h.endswith(f"::{lock_expr}") for h in acc.held)
            if not held_ok:
                findings.append(Finding(
                    fn.rel, acc.line, "classify",
                    f"wrong-lock access: '{fn.cls}::{acc.member}' is "
                    f"GUARDED_BY({lock_expr}) but '{fn.name}' holds "
                    f"{list(acc.held) or 'no locks'} and declares no "
                    f"REQUIRES({lock_expr})"))
    return findings


# ---------------------------------------------------------------------------
# lock-order check


def static_lock_graph(prog: Program, sup: Suppressions
                      ) -> tuple[dict[str, dict[str, str]], list[Finding]]:
    """Name-level acquisition graph: direct nesting plus call-graph
    propagation (held lock -> every lock transitively acquired by the
    callee). Returns adj[from][to] = example-site string."""
    findings: list[Finding] = []
    defined: dict[str, list[FuncInfo]] = defaultdict(list)
    for fn in prog.funcs:
        defined[fn.name].append(fn)

    # Transitive acquisitions per function name (fixpoint over names — the
    # same over-approximation as reachability).
    acq: dict[str, set[str]] = defaultdict(set)
    for fn in prog.funcs:
        if fn.is_capability_member:
            continue
        acq[fn.name].update(ev.name for ev in fn.acquires)
        acq[fn.name].update(fn.entry_locks)
    changed = True
    while changed:
        changed = False
        for fn in prog.funcs:
            if fn.is_capability_member:
                continue
            before = len(acq[fn.name])
            for call in fn.calls:
                if call.callee in defined:
                    acq[fn.name].update(acq[call.callee])
            if len(acq[fn.name]) != before:
                changed = True

    adj: dict[str, dict[str, str]] = defaultdict(dict)

    def add_edge(frm: str, to: str, site: str) -> None:
        if frm == to and frm.startswith("?::"):
            return  # unresolved aliases self-colliding is pure noise
        if sup.lock_ok(frm) or sup.lock_ok(to):
            return
        adj[frm].setdefault(to, site)

    for fn in prog.funcs:
        if fn.is_capability_member:
            continue
        for frm, to, line in fn.edges:
            add_edge(frm, to, f"{fn.rel}:{line}")
        for call in fn.calls:
            if not call.held or call.callee not in defined:
                continue
            for callee_fn in defined[call.callee]:
                if callee_fn.is_capability_member:
                    continue
            for lock_name in sorted(acq.get(call.callee, ())):
                if lock_name != call.held[-1]:
                    add_edge(call.held[-1], lock_name,
                             f"{fn.rel}:{call.line} (via {call.callee})")

    unresolved = sorted({name for frm in adj
                         for name in (frm, *adj[frm])
                         if name.startswith("?::")})
    for name in unresolved:
        findings.append(Finding(
            "tools/analyze", 0, "lock-order",
            f"unresolvable lock expression {name!r} in the static graph — "
            f"register a symbolic name or add `lock {name}: <why>` to the "
            f"suppression file"))
    return adj, findings


def find_cycles(adj: dict[str, dict[str, str]]) -> list[list[str]]:
    """All elementary cycles would be overkill; one cycle per strongly
    connected component (plus self-edges) is what a human needs to fix."""
    cycles: list[list[str]] = []
    for frm, tos in adj.items():
        if frm in tos:
            cycles.append([frm, frm])
    index = 0
    stack: list[str] = []
    on_stack: set[str] = set()
    indices: dict[str, int] = {}
    low: dict[str, int] = {}
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        nonlocal index
        work = [(v, iter(sorted(adj.get(v, ()))))]
        indices[v] = low[v] = index
        index += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in indices:
                    indices[w] = low[w] = index
                    index += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], indices[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == indices[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1:
                    sccs.append(comp)

    for v in list(adj):
        if v not in indices:
            strongconnect(v)
    for comp in sccs:
        cycles.append(shortest_cycle_in(adj, comp))
    return cycles


def shortest_cycle_in(adj: dict[str, dict[str, str]],
                      comp: list[str]) -> list[str]:
    comp_set = set(comp)
    start = sorted(comp)[0]
    # BFS back to start constrained to the component.
    parent: dict[str, str] = {}
    frontier = [start]
    seen = {start}
    while frontier:
        nxt: list[str] = []
        for node in frontier:
            for w in sorted(adj.get(node, ())):
                if w == start:
                    path = [start]
                    cur = node
                    while cur != start:
                        path.append(cur)
                        cur = parent[cur]
                    path.append(start)
                    path.reverse()
                    return path
                if w in comp_set and w not in seen:
                    seen.add(w)
                    parent[w] = node
                    nxt.append(w)
        frontier = nxt
    return comp + [comp[0]]  # unreachable for a true SCC; defensive


#: Node names the runtime dump falls back to for locks that never
#: registered a symbolic identity. Unlike "HTNode::lock" these are not
#: equivalence classes — every anonymous test-fixture SpinLock collapses
#: to the same name, so a nesting of two unrelated instances would read
#: as a self-cycle. Edges touching them are skipped at merge time; the
#: runtime recorder already checks anonymous locks at address level.
KIND_FALLBACK_NAMES = frozenset({"SpinLock", "Mutex", "Anon"})


def load_runtime_dumps(paths: list[str]) -> tuple[dict[str, dict[str, str]],
                                                  list[str]]:
    """Merges runtime dump files (or directories of them) into one
    name-level graph; returns (adj, errors). Edges involving
    KIND_FALLBACK_NAMES (unnamed locks) are dropped — see above."""
    adj: dict[str, dict[str, str]] = defaultdict(dict)
    errors: list[str] = []
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(sorted(
                os.path.join(p, f) for f in os.listdir(p)
                if f.endswith(".json")))
        else:
            files.append(p)
    for f in files:
        try:
            with open(f, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            errors.append(f"{f}: unreadable runtime dump: {err}")
            continue
        if doc.get("schema") != "smpmine.lock_order.runtime.v1":
            errors.append(f"{f}: not a runtime lock-order dump "
                          f"(schema {doc.get('schema')!r})")
            continue
        for e in doc.get("edges", []):
            if (e["from"] in KIND_FALLBACK_NAMES
                    or e["to"] in KIND_FALLBACK_NAMES):
                continue
            adj[e["from"]].setdefault(e["to"], f"runtime:{os.path.basename(f)}")
    return adj, errors


def merge_graphs(static_adj: dict[str, dict[str, str]],
                 runtime_adj: dict[str, dict[str, str]]
                 ) -> dict[str, dict[str, dict]]:
    merged: dict[str, dict[str, dict]] = defaultdict(dict)
    for frm, tos in static_adj.items():
        for to, site in tos.items():
            merged[frm][to] = {"sources": ["static"], "site": site}
    for frm, tos in runtime_adj.items():
        for to, site in tos.items():
            if to in merged.get(frm, {}):
                merged[frm][to]["sources"].append("runtime")
            else:
                merged[frm][to] = {"sources": ["runtime"], "site": site}
    return merged


def baseline_from_merged(merged: dict[str, dict[str, dict]]) -> dict:
    edges = []
    for frm in sorted(merged):
        for to in sorted(merged[frm]):
            info = merged[frm][to]
            edges.append({"from": frm, "to": to,
                          "sources": sorted(set(info["sources"])),
                          "site": info["site"]})
    return {"schema": "smpmine.lock_order.baseline.v1", "edges": edges}


def check_lock_order(prog: Program, sup: Suppressions, baseline_path: str,
                     runtime_paths: list[str], update_baseline: bool
                     ) -> tuple[list[Finding], list[str], dict]:
    findings: list[Finding] = []
    warnings: list[str] = []
    static_adj, unresolved = static_lock_graph(prog, sup)
    findings.extend(unresolved)
    runtime_adj, dump_errors = load_runtime_dumps(runtime_paths)
    for err in dump_errors:
        findings.append(Finding("tools/analyze", 0, "lock-order", err))
    merged = merge_graphs(static_adj, runtime_adj)

    plain = {frm: {to: info["site"] for to, info in tos.items()}
             for frm, tos in merged.items()}
    for cyc in find_cycles(plain):
        suffix = f" {SELF_SUFFIX}" if len(cyc) == 2 and cyc[0] == cyc[1] \
            else ""
        sites = []
        for a, b in zip(cyc, cyc[1:]):
            sites.append(f"{a} -> {b} [{plain[a][b]}]")
        findings.append(Finding(
            "tools/analyze", 0, "lock-order",
            f"lock-order cycle in the merged graph{suffix}: "
            + "; ".join(sites)))

    doc = baseline_from_merged(merged)
    if update_baseline:
        os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        warnings.append(f"baseline written: {baseline_path} "
                        f"({len(doc['edges'])} edge(s))")
        return findings, warnings, doc

    known: set[tuple[str, str]] = set()
    if os.path.isfile(baseline_path):
        try:
            with open(baseline_path, encoding="utf-8") as fh:
                base = json.load(fh)
            known = {(e["from"], e["to"]) for e in base.get("edges", [])}
        except (OSError, json.JSONDecodeError, KeyError) as err:
            findings.append(Finding(
                baseline_path, 0, "lock-order",
                f"unreadable baseline: {err}"))
    else:
        findings.append(Finding(
            baseline_path, 0, "lock-order",
            "missing lock-order baseline — run with --update-baseline"))

    for frm in sorted(merged):
        for to in sorted(merged[frm]):
            if (frm, to) in known:
                continue
            info = merged[frm][to]
            msg = (f"lock-order edge {frm} -> {to} [{info['site']}] is not "
                   f"in the baseline ({baseline_path}) — audit the nesting "
                   f"and run --update-baseline")
            if "static" in info["sources"]:
                findings.append(Finding("tools/analyze", 0, "lock-order",
                                        msg))
            else:
                warnings.append(f"warning: runtime-only {msg}")
    return findings, warnings, doc


# ---------------------------------------------------------------------------
# phase-effects check


def compute_phase_effects(prog: Program) -> tuple[
        list[str], dict[str, set[str]], dict[str, set[str]],
        dict[tuple[str, str, str], str]]:
    """Transitive per-phase read/write sets of PHASE_EFFECT_SCOPE fields.

    Seeds are the call sites and field accesses lexically inside a phase
    macro scope; from the calls a BFS follows the call graph (exact
    (class, method) targets for typed receivers, name-level otherwise) and
    attributes every reached access to the phase. Returns (ordered phases,
    reads, writes, example sites keyed (phase, field, 'r'|'w'))."""
    by_name: dict[str, list[FuncInfo]] = defaultdict(list)
    by_cls_name: dict[tuple[str, str], list[FuncInfo]] = defaultdict(list)
    for fn in prog.funcs:
        by_name[fn.name].append(fn)
        if fn.cls is not None:
            by_cls_name[(fn.cls, fn.name)].append(fn)

    def resolve_call(call: CallSite) -> list[FuncInfo]:
        if call.recv is not None:
            exact = by_cls_name.get((call.recv, call.callee))
            if exact:
                return exact
            return []  # typed receiver with no such method: container noise
        if call.callee in CALL_STOPLIST:
            return []
        return by_name.get(call.callee, [])

    reads: dict[str, set[str]] = defaultdict(set)
    writes: dict[str, set[str]] = defaultdict(set)
    sites: dict[tuple[str, str, str], str] = {}
    seen_phases: list[str] = []

    def note(phase: str, fn: FuncInfo, acc: FieldAccess) -> None:
        if fn.cls is None:
            return
        rel = prog.class_file.get(fn.cls)
        if rel is None or not lint.in_scope(rel, PHASE_EFFECT_SCOPE):
            return
        qualified = f"{fn.cls}::{acc.member}"
        if acc.is_write:
            writes[phase].add(qualified)
            sites.setdefault((phase, qualified, "w"), f"{fn.rel}:{acc.line}")
        else:
            reads[phase].add(qualified)
            sites.setdefault((phase, qualified, "r"), f"{fn.rel}:{acc.line}")

    # Group seeds per phase, then close over the call graph once per phase.
    seed_calls: dict[str, list[CallSite]] = defaultdict(list)
    for fn in prog.funcs:
        for acc in fn.accesses:
            if acc.phase:
                if acc.phase not in seen_phases:
                    seen_phases.append(acc.phase)
                note(acc.phase, fn, acc)
        for call in fn.calls:
            if call.phase:
                if call.phase not in seen_phases:
                    seen_phases.append(call.phase)
                seed_calls[call.phase].append(call)

    for phase, calls in seed_calls.items():
        visited: set[str] = set()
        work: list[FuncInfo] = []
        for call in calls:
            work.extend(resolve_call(call))
        while work:
            fn = work.pop()
            if fn.key in visited:
                continue
            visited.add(fn.key)
            for acc in fn.accesses:
                note(phase, fn, acc)
            for call in fn.calls:
                for target in resolve_call(call):
                    if target.key not in visited:
                        work.append(target)

    ordered = [p for p in PHASE_ORDER if p in seen_phases] + \
        sorted(p for p in seen_phases if p not in PHASE_ORDER)
    for p in ordered:
        reads.setdefault(p, set())
        writes.setdefault(p, set())
    return ordered, reads, writes, sites


def freeze_set(phases: list[str], reads: dict[str, set[str]],
               writes: dict[str, set[str]], p: str) -> set[str]:
    """Fields phase p writes that later phases read but never write — the
    frozen-structure pattern the paper's freeze/count split relies on."""
    later = phases[phases.index(p) + 1:]
    read_later: set[str] = set()
    written_later: set[str] = set()
    for q in later:
        read_later |= reads[q]
        written_later |= writes[q]
    return (writes[p] & read_later) - written_later


def phase_dependency_graph(phases: list[str], reads: dict[str, set[str]],
                           writes: dict[str, set[str]]) -> list[dict]:
    """Edge A -> B when B reads what A writes. Backward edges (a later
    phase feeding an earlier one) are next-iteration dependencies — the
    per-iteration pipeline is a cycle by design, so they are reported, not
    findings."""
    edges: list[dict] = []
    for a in phases:
        for b in phases:
            if a == b:
                continue
            fields = sorted(writes[a] & reads[b])
            if fields:
                edges.append({"from": a, "to": b, "fields": fields})
    return edges


def phase_hazard_list(phases: list[str], reads: dict[str, set[str]],
                      writes: dict[str, set[str]]) -> list[dict]:
    """Cross-phase hazards per field: write/write when two phases write
    it, write/read when a phase reads what another phase writes."""
    field_writers: dict[str, list[str]] = defaultdict(list)
    field_readers: dict[str, list[str]] = defaultdict(list)
    for p in phases:
        for f in writes[p]:
            field_writers[f].append(p)
        for f in reads[p]:
            field_readers[f].append(p)
    hazards: list[dict] = []
    for f in sorted(field_writers):
        writers = field_writers[f]
        readers = [p for p in field_readers.get(f, []) if p not in writers]
        if len(writers) >= 2:
            hazards.append({"field": f, "kind": "write/write",
                            "writers": writers, "readers": readers})
        if readers:
            hazards.append({"field": f, "kind": "write/read",
                            "writers": writers, "readers": readers})
    return hazards


def check_frozen_contract(phases: list[str], writes: dict[str, set[str]],
                          sites: dict[tuple[str, str, str], str]
                          ) -> list[Finding]:
    findings: list[Finding] = []
    prefix = FROZEN_CONTRACT_CLASS + "::"
    for p in phases:
        for f in sorted(writes[p]):
            if not f.startswith(prefix):
                continue
            member = f[len(prefix):]
            allowed = FROZEN_CONTRACT_OVERRIDES.get(
                member, FROZEN_CONTRACT_WRITERS)
            if p in allowed:
                continue
            site = sites.get((p, f, "w"), "?:0")
            rel, _, ln = site.rpartition(":")
            findings.append(Finding(
                rel or site, int(ln) if ln.isdigit() else 0,
                "phase-effects",
                f"frozen-tree contract: '{f}' is written in phase '{p}' "
                f"but after freeze the structure is read-only (allowed "
                f"writer phases: {', '.join(allowed)}) — the "
                f"SMPMINE_CHECKED phase-epoch validator aborts on this "
                f"write at runtime"))
    return findings


def load_runtime_effects(paths: list[str]) -> tuple[dict[str, set[str]],
                                                    list[str]]:
    """Merges SMPMINE_PHASE_EPOCH_DUMP files (or directories of them) into
    structure -> {phases observed writing it}; returns (writes, errors)."""
    observed: dict[str, set[str]] = defaultdict(set)
    errors: list[str] = []
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(sorted(
                os.path.join(p, f) for f in os.listdir(p)
                if f.endswith(".json")))
        else:
            files.append(p)
    for f in files:
        try:
            with open(f, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            errors.append(f"{f}: unreadable runtime effects dump: {err}")
            continue
        if doc.get("schema") != "smpmine.phase_effects.runtime.v1":
            errors.append(f"{f}: not a runtime phase-effects dump "
                          f"(schema {doc.get('schema')!r})")
            continue
        for w in doc.get("writes", []):
            observed[w["structure"]].add(w["phase"])
    return observed, errors


def effects_doc(phases: list[str], reads: dict[str, set[str]],
                writes: dict[str, set[str]], graph: list[dict],
                hazards: list[dict],
                runtime_writes: dict[str, set[str]]) -> dict:
    return {
        "schema": "smpmine.phase_effects.baseline.v1",
        "phases": {p: {
            "reads": sorted(reads[p]),
            "writes": sorted(writes[p]),
            "frozen": sorted(freeze_set(phases, reads, writes, p)),
        } for p in phases},
        "graph": graph,
        "hazards": hazards,
        "runtime_writes": [
            {"structure": s, "phases": sorted(runtime_writes[s])}
            for s in sorted(runtime_writes)],
    }


def check_phase_effects(prog: Program, sup: Suppressions,
                        verdict_by_field: dict[str, FieldVerdict],
                        baseline_path: str, runtime_paths: list[str],
                        update_baseline: bool
                        ) -> tuple[list[Finding], list[str], dict]:
    findings: list[Finding] = []
    warnings: list[str] = []
    phases, reads, writes, sites = compute_phase_effects(prog)
    graph = phase_dependency_graph(phases, reads, writes)
    hazards = phase_hazard_list(phases, reads, writes)
    findings.extend(check_frozen_contract(phases, writes, sites))
    runtime_writes, dump_errors = load_runtime_effects(runtime_paths)
    for err in dump_errors:
        findings.append(Finding("tools/analyze", 0, "phase-effects", err))

    old: dict = {}
    if os.path.isfile(baseline_path):
        try:
            with open(baseline_path, encoding="utf-8") as fh:
                old = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            findings.append(Finding(baseline_path, 0, "phase-effects",
                                    f"unreadable baseline: {err}"))
            old = {}
    old_hazards = {(h["field"], h["kind"]): h
                   for h in old.get("hazards", [])}

    if update_baseline:
        # Preserve written justifications and previously observed runtime
        # writes; new hazards get an empty why the author must fill in.
        for h in hazards:
            prev = old_hazards.get((h["field"], h["kind"]))
            h["why"] = prev.get("why", "") if prev else ""
        merged_rt: dict[str, set[str]] = defaultdict(set)
        for e in old.get("runtime_writes", []):
            merged_rt[e["structure"]].update(e["phases"])
        for s, ps in runtime_writes.items():
            merged_rt[s].update(ps)
        doc = effects_doc(phases, reads, writes, graph, hazards, merged_rt)
        os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        empty_why = [h for h in hazards if not h["why"]]
        warnings.append(
            f"phase-effects baseline written: {baseline_path} "
            f"({len(phases)} phase(s), {len(graph)} edge(s), "
            f"{len(hazards)} hazard(s), {len(empty_why)} needing a "
            f"written justification)")
        return findings, warnings, doc

    doc = effects_doc(phases, reads, writes, graph, hazards, runtime_writes)
    if not old:
        findings.append(Finding(
            baseline_path, 0, "phase-effects",
            "missing phase-effects baseline — run with --update-baseline"))
        return findings, warnings, doc

    frozen_prefix = FROZEN_CONTRACT_CLASS + "::"
    for h in hazards:
        qualified, kind = h["field"], h["kind"]
        v = verdict_by_field.get(qualified)
        if v is not None and v.classification in PROTECTED_CLASSES:
            continue  # the lattice already carries the protection story
        if qualified.startswith(frozen_prefix):
            continue  # the frozen-tree contract check governs these
        if v is not None and prog.sources[v.rel].has_marker(
                v.member.line, MARKER_PHASE_OK):
            continue
        if sup.phase_ok(qualified):
            continue
        prev = old_hazards.get((qualified, kind))
        where = " / ".join(
            sites.get((p, qualified, "w"), "?") for p in h["writers"])
        if prev is None:
            findings.append(Finding(
                "tools/analyze", 0, "phase-effects",
                f"cross-phase {kind} hazard on '{qualified}' (writers: "
                f"{', '.join(h['writers'])}; readers: "
                f"{', '.join(h['readers']) or 'none'}) [{where}] is not in "
                f"the phase-effects baseline — audit the protection story "
                f"and run --update-baseline, mark the field "
                f"`phase-ok: <why>`, or add `phase {qualified}: <why>` to "
                f"the suppression file"))
            continue
        new_writers = sorted(set(h["writers"]) - set(prev.get("writers", [])))
        new_readers = sorted(set(h["readers"]) - set(prev.get("readers", [])))
        if new_writers or new_readers:
            what = []
            if new_writers:
                what.append(f"new writer phase(s): {', '.join(new_writers)}")
            if new_readers:
                what.append(f"new reader phase(s): {', '.join(new_readers)}")
            findings.append(Finding(
                "tools/analyze", 0, "phase-effects",
                f"cross-phase {kind} hazard on '{qualified}' grew beyond "
                f"the baseline ({'; '.join(what)}) [{where}] — re-audit "
                f"and run --update-baseline"))
            continue
        if not prev.get("why", "").strip():
            findings.append(Finding(
                baseline_path, 0, "phase-effects",
                f"baseline hazard entry for '{qualified}' ({kind}) has no "
                f"written justification — explain the protection story in "
                f"its \"why\" field"))

    # Runtime-observed writes the baseline does not know: warn (coverage
    # depends on which tests ran), mirroring runtime-only lock-order edges.
    known_rt: dict[str, set[str]] = defaultdict(set)
    for e in old.get("runtime_writes", []):
        known_rt[e["structure"]].update(e["phases"])
    for s in sorted(runtime_writes):
        missing = sorted(runtime_writes[s] - known_rt[s])
        if missing:
            warnings.append(
                f"warning: runtime-observed write of '{s}' in phase(s) "
                f"{', '.join(missing)} is not in the phase-effects "
                f"baseline ({baseline_path}) — audit and run "
                f"--update-baseline")
    return findings, warnings, doc


def write_dot(path: str, phases: list[str], graph: list[dict]) -> None:
    lines = ["digraph phase_deps {", "  rankdir=LR;"]
    for p in phases:
        lines.append(f'  "{p}";')
    for e in graph:
        label = ", ".join(f.split("::")[-1] for f in e["fields"][:3])
        if len(e["fields"]) > 3:
            label += f", +{len(e['fields']) - 3} more"
        lines.append(f'  "{e["from"]}" -> "{e["to"]}" [label="{label}"];')
    lines.append("}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# Driver


def render_classification(verdicts: list[FieldVerdict]) -> str:
    counts: dict[str, int] = {k: 0 for k in LATTICE}
    for v in verdicts:
        counts[v.classification] += 1
    total = len(verdicts)
    parts = [f"{k}={counts[k]}" for k in LATTICE if counts[k]]
    return f"{total} field(s): " + " ".join(parts)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="smpmine-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=lint.default_root())
    parser.add_argument("--backend", choices=("auto", "regex", "clang"),
                        default="auto")
    parser.add_argument("--checks",
                        default="classify,lock-order,phase-effects",
                        help="comma-separated subset of "
                             "{classify,lock-order,phase-effects}")
    parser.add_argument("--suppressions", default=None,
                        help=f"suppression file (default "
                             f"{DEFAULT_SUPPRESSIONS} under --root)")
    parser.add_argument("--baseline", default=None,
                        help=f"lock-order baseline (default "
                             f"{DEFAULT_BASELINE} under --root)")
    parser.add_argument("--runtime-dump", action="append", default=[],
                        metavar="PATH",
                        help="runtime lock-order dump file or directory of "
                             "dumps (repeatable)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="persist the merged graph(s) as the "
                             "baseline(s) instead of diffing against them")
    parser.add_argument("--classification-report", metavar="PATH",
                        help="also write the full field classification as "
                             "JSON")
    parser.add_argument("--phase-effects", action="store_true",
                        help="print the full per-phase read/write/frozen "
                             "sets and the dependency graph (implies the "
                             "phase-effects check)")
    parser.add_argument("--effects-baseline", default=None,
                        help=f"phase-effects baseline (default "
                             f"{DEFAULT_EFFECTS_BASELINE} under --root)")
    parser.add_argument("--runtime-effects", action="append", default=[],
                        metavar="PATH",
                        help="SMPMINE_PHASE_EPOCH_DUMP file or directory "
                             "of dumps (repeatable)")
    parser.add_argument("--effects-report", metavar="PATH",
                        help="also write the phase-effects document "
                             "(sets, graph, hazards) as JSON")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the phase dependency graph as Graphviz")
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to --root "
                             "(default: src)")
    args = parser.parse_args(argv)

    checks = tuple(c.strip() for c in args.checks.split(",") if c.strip())
    if args.phase_effects and "phase-effects" not in checks:
        checks = checks + ("phase-effects",)
    bad = [c for c in checks
           if c not in ("classify", "lock-order", "phase-effects")]
    if bad:
        print(f"smpmine-analyze: unknown check(s): {', '.join(bad)}",
              file=sys.stderr)
        return 2
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"smpmine-analyze: no such root: {root}", file=sys.stderr)
        return 2

    sup_path = args.suppressions or os.path.join(root, DEFAULT_SUPPRESSIONS)
    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
    effects_baseline_path = args.effects_baseline or os.path.join(
        root, DEFAULT_EFFECTS_BASELINE)
    sup = Suppressions.load(sup_path)
    if sup.errors:
        for err in sup.errors:
            print(f"smpmine-analyze: {err}", file=sys.stderr)
        return 2

    rels = lint.collect_files(root, args.paths or list(ANALYZE_SCOPE))
    try:
        prog = build_program(root, rels, args.backend)
    except RuntimeError as err:
        print(f"smpmine-analyze: {err}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    warnings: list[str] = []
    verdicts: list[FieldVerdict] = []

    # phase-effects consults the lattice for protection stories, so the
    # classification runs for it too — its findings only gate when the
    # classify check itself is selected.
    if "classify" in checks or "phase-effects" in checks:
        seeds = spmd_seed_functions(prog)
        seed_callees = {
            call.callee for fn in prog.funcs if fn.spmd_seed
            for call in fn.calls}
        reach = reachable_functions(prog, seeds | seed_callees)
        verdicts, cls_findings = classify_fields(prog, sup, reach)
        if "classify" in checks:
            findings.extend(cls_findings)

    if "classify" in checks:
        print(f"smpmine-analyze: classification: "
              f"{render_classification(verdicts)}")
        if args.classification_report:
            report = [{
                "class": v.cls, "field": v.member.name, "file": v.rel,
                "line": v.member.line, "classification": v.classification,
                "detail": v.detail,
            } for v in verdicts]
            with open(args.classification_report, "w",
                      encoding="utf-8") as fh:
                json.dump({"schema": "smpmine.classification.v1",
                           "fields": report}, fh, indent=2)
                fh.write("\n")

    if "lock-order" in checks:
        lo_findings, lo_warnings, doc = check_lock_order(
            prog, sup, baseline_path, args.runtime_dump,
            args.update_baseline)
        findings.extend(lo_findings)
        warnings.extend(lo_warnings)
        print(f"smpmine-analyze: lock-order: {len(doc['edges'])} edge(s) in "
              f"the merged graph")

    if "phase-effects" in checks:
        verdict_by_field = {
            f"{v.cls}::{v.member.name}": v for v in verdicts}
        pe_findings, pe_warnings, pe_doc = check_phase_effects(
            prog, sup, verdict_by_field, effects_baseline_path,
            args.runtime_effects, args.update_baseline)
        findings.extend(pe_findings)
        warnings.extend(pe_warnings)
        pe_phases = list(pe_doc["phases"])
        print(f"smpmine-analyze: phase-effects: {len(pe_phases)} phase(s), "
              f"{len(pe_doc['graph'])} dependency edge(s), "
              f"{len(pe_doc['hazards'])} cross-phase hazard(s)")
        if args.phase_effects:
            for p in pe_phases:
                info = pe_doc["phases"][p]
                print(f"  phase {p}: {len(info['reads'])} read(s), "
                      f"{len(info['writes'])} write(s), "
                      f"{len(info['frozen'])} frozen")
                for f in info["writes"]:
                    print(f"    W {f}")
                for f in info["reads"]:
                    if f not in info["writes"]:
                        print(f"    R {f}")
                for f in info["frozen"]:
                    print(f"    * {f} (frozen after this phase)")
            for e in pe_doc["graph"]:
                print(f"  {e['from']} -> {e['to']}: "
                      f"{', '.join(e['fields'])}")
        if args.effects_report:
            with open(args.effects_report, "w", encoding="utf-8") as fh:
                json.dump(pe_doc, fh, indent=2)
                fh.write("\n")
        if args.dot:
            write_dot(args.dot, pe_phases, pe_doc["graph"])

    for w in warnings:
        print(f"smpmine-analyze: {w}", file=sys.stderr)
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.message)):
        print(f.render())
    if findings:
        print(f"smpmine-analyze: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("smpmine-analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
