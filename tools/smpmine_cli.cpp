// smpmine — command-line association miner.
//
//   # mine a file (one transaction per line, space-separated item ids)
//   $ smpmine --input baskets.txt --support 0.005 --confidence 0.8
//
//   # or generate a Quest benchmark dataset on the fly
//   $ smpmine --generate T10.I4.D100K --support 0.005 --threads 8
//
// Prints the mining profile, then the rules. All paper knobs (placement
// policy, balancing schemes, subset checking, counter discipline) are
// exposed so the tool doubles as an experimentation harness on real data.
#include <cstdio>
#include <string>

#include "core/miner.hpp"
#include "core/results_io.hpp"
#include "core/rules.hpp"
#include "data/db_io.hpp"
#include "data/quest_gen.hpp"
#include "itemset/itemset.hpp"
#include "obs/ledger/telemetry.hpp"
#include "obs/perf/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

using namespace smpmine;

namespace {

bool fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return false;
}

bool parse_options(const CliParser& cli, MinerOptions& opts) {
  opts.min_support = cli.get_double("support", 0.005);
  opts.min_confidence = cli.get_double("confidence", 0.8);
  opts.threads = static_cast<std::uint32_t>(cli.get_int("threads", 1));
  opts.leaf_threshold =
      static_cast<std::uint32_t>(cli.get_int("leaf-threshold", 8));

  const std::string algo = cli.get("algorithm", "ccpd");
  if (algo == "ccpd") {
    opts.algorithm = Algorithm::CCPD;
  } else if (algo == "pccd") {
    opts.algorithm = Algorithm::PCCD;
  } else {
    return fail("unknown --algorithm '" + algo + "' (ccpd|pccd)");
  }

  const std::string place = cli.get("placement", "LCA-GPP");
  if (const auto parsed = placement_from_string(place)) {
    opts.placement = *parsed;
  } else {
    return fail("unknown --placement '" + place +
                "' (CCPD|SPP|LPP|GPP|L-SPP|L-LPP|L-GPP|LCA-GPP)");
  }

  const std::string hash = cli.get("hash", "indirection");
  if (hash == "interleaved") {
    opts.hash_scheme = HashScheme::Interleaved;
  } else if (hash == "bitonic") {
    opts.hash_scheme = HashScheme::Bitonic;
  } else if (hash == "indirection") {
    opts.hash_scheme = HashScheme::Indirection;
  } else {
    return fail("unknown --hash '" + hash + "'");
  }

  const std::string balance = cli.get("balance", "bitonic");
  if (balance == "block") {
    opts.balance = PartitionScheme::Block;
  } else if (balance == "interleaved") {
    opts.balance = PartitionScheme::Interleaved;
  } else if (balance == "bitonic") {
    opts.balance = PartitionScheme::Bitonic;
  } else {
    return fail("unknown --balance '" + balance + "'");
  }

  const std::string check = cli.get("subset-check", "frame");
  if (check == "leaf") {
    opts.subset_check = SubsetCheck::LeafVisited;
  } else if (check == "flags") {
    opts.subset_check = SubsetCheck::VisitedFlags;
  } else if (check == "frame") {
    opts.subset_check = SubsetCheck::FrameLocal;
  } else {
    return fail("unknown --subset-check '" + check + "' (leaf|flags|frame)");
  }

  const std::string kernel = cli.get("count-kernel", "flat");
  if (kernel == "pointer") {
    opts.count_kernel = CountKernel::Pointer;
  } else if (kernel == "flat") {
    opts.count_kernel = CountKernel::Flat;
  } else if (kernel == "vertical") {
    opts.count_kernel = CountKernel::Vertical;
  } else if (kernel == "auto") {
    opts.count_kernel = CountKernel::Auto;
  } else {
    return fail("unknown --count-kernel '" + kernel +
                "' (pointer|flat|vertical|auto)");
  }

  const std::string dbpart = cli.get("db-partition", "block");
  if (dbpart == "block") {
    opts.db_partition = DbPartition::Block;
  } else if (dbpart == "balanced") {
    opts.db_partition = DbPartition::Balanced;
  } else if (dbpart == "adaptive") {
    opts.db_partition = DbPartition::Adaptive;
  } else {
    return fail("unknown --db-partition '" + dbpart + "'");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("input", "transaction file (ASCII: one txn per line; .bin "
                        "for the binary format)");
  cli.add_flag("generate", "generate a Quest dataset by paper name, e.g. "
                           "T10.I4.D100K");
  cli.add_flag("seed", "generator seed", "1996");
  cli.add_flag("support", "minimum support (fraction of |D|)", "0.005");
  cli.add_flag("confidence", "minimum rule confidence", "0.8");
  cli.add_flag("threads", "worker threads", "1");
  cli.add_flag("algorithm", "ccpd | pccd", "ccpd");
  cli.add_flag("placement", "memory placement policy", "LCA-GPP");
  cli.add_flag("hash", "interleaved | bitonic | indirection", "indirection");
  cli.add_flag("balance", "block | interleaved | bitonic", "bitonic");
  cli.add_flag("subset-check", "leaf | flags | frame", "frame");
  cli.add_flag("count-kernel",
               "pointer | flat (frozen CSR) | vertical (tid-bitmaps) | auto "
               "(per-iteration cost model)",
               "flat");
  cli.add_flag("db-partition", "block | balanced | adaptive", "block");
  cli.add_flag("leaf-threshold", "max itemsets per hash-tree leaf", "8");
  cli.add_flag("max-rules", "rules to print (0 = all)", "25");
  cli.add_flag("no-rules", "skip rule generation");
  cli.add_flag("itemsets", "also print every frequent itemset");
  cli.add_flag("save-binary", "write the loaded/generated database here");
  cli.add_flag("save-itemsets", "write frequent itemsets (text) here");
  cli.add_flag("save-rules", "write rules (CSV) here");
  cli.add_flag("trace", "write Chrome trace-event JSON here (open in "
                        "Perfetto / chrome://tracing)");
  cli.add_flag("metrics", "write run-manifest JSON here (options, dataset "
                          "digest, per-iteration stats, metric totals)");
  cli.add_flag("perf-backend",
               "per-phase counter attribution: auto | hw | software | off "
               "(auto probes perf_event_open, falls back to software)",
               "off");
  cli.add_flag("flight", "flight recorder (always-on black box): on | off",
               "on");
  cli.add_flag("flight-dump",
               "pre-open this path for the smpmine.flight.v1 crash/stall "
               "dump and install the crash handlers (decoder: "
               "tools/flight/smpmine_flight.py)");
  cli.add_flag("flight-watchdog-ms",
               "dump a flight report when no event lands for this many "
               "milliseconds (0 = no watchdog)", "0");
  cli.add_flag("telemetry-ms",
               "stream smpmine.telemetry.v1 JSONL samples every N "
               "milliseconds (0 = off; needs --telemetry-out)", "0");
  cli.add_flag("telemetry-out",
               "telemetry JSONL output path (tail -f friendly; one "
               "complete JSON record per line)");
  if (!cli.parse(argc, argv)) return 1;

  // Name the master thread unconditionally: the flight recorder (and the
  // log-line prefix) want it even when tracing is off.
  obs::set_current_thread_name("main");

  const std::string trace_path = cli.get("trace", "");
  const std::string metrics_path = cli.get("metrics", "");
  if (!trace_path.empty()) {
    // Turn span collection on before any pool exists so worker tracks are
    // registered from their first task.
    obs::Tracer::instance().set_enabled(true);
  }
  {
    const std::string flight = cli.get("flight", "on");
    if (flight == "off") {
      obs::flight::set_enabled(false);
    } else if (flight != "on") {
      std::fprintf(stderr, "error: bad --flight '%s'\n", flight.c_str());
      return 1;
    }
    const std::string dump_path = cli.get("flight-dump", "");
    if (!dump_path.empty()) {
      if (!obs::flight::set_dump_path(dump_path.c_str())) {
        std::fprintf(stderr, "error: cannot open --flight-dump '%s'\n",
                     dump_path.c_str());
        return 1;
      }
      obs::flight::install_crash_handler();
    }
    const int watchdog_ms = cli.get_int("flight-watchdog-ms", 0);
    if (watchdog_ms > 0) {
      obs::flight::start_watchdog(static_cast<std::uint64_t>(watchdog_ms));
    }
    // Counters into crash dumps (cheap, idempotent; see flight_metrics.cpp).
    obs::flight::sync_metrics_for_dump();
  }
  {
    const std::string backend_name = cli.get("perf-backend", "off");
    const auto requested = obs::perf::backend_from_string(backend_name);
    if (!requested) {
      std::fprintf(stderr, "error: bad --perf-backend '%s'\n",
                   backend_name.c_str());
      return 1;
    }
    // Select before any pool exists so every worker opens its counter
    // session on first phase scope.
    const auto active = obs::perf::init(*requested);
    if (*requested != obs::perf::PerfBackend::Off) {
      std::printf("perf backend: %s\n", obs::perf::to_string(active));
    }
  }

  Database db;
  std::string dataset_label;
  if (cli.has("input")) {
    const std::string path = cli.get("input", "");
    dataset_label = path;
    try {
      db = path.size() > 4 && path.substr(path.size() - 4) == ".bin"
               ? load_binary(path)
               : load_ascii(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("loaded %zu transactions (avg length %.2f) from %s\n",
                db.size(), db.avg_transaction_size(), path.c_str());
  } else if (cli.has("generate")) {
    const std::string name = cli.get("generate", "");
    dataset_label = name;
    auto params = QuestParams::from_name(name);
    if (!params) {
      std::fprintf(stderr, "error: bad dataset name '%s'\n", name.c_str());
      return 1;
    }
    params->seed = static_cast<std::uint64_t>(cli.get_int("seed", 1996));
    db = generate_quest(*params);
    std::printf("generated %s: %zu transactions, %.1f MB\n", name.c_str(),
                db.size(), static_cast<double>(db.storage_bytes()) / 1e6);
  } else {
    std::fputs(cli.help(argv[0]).c_str(), stderr);
    std::fputs("one of --input or --generate is required\n", stderr);
    return 1;
  }
  if (db.empty()) {
    std::fputs("error: database is empty\n", stderr);
    return 1;
  }

  if (const std::string out = cli.get("save-binary", ""); !out.empty()) {
    save_binary(db, out);
    std::printf("database written to %s\n", out.c_str());
  }

  MinerOptions opts;
  if (!parse_options(cli, opts)) return 1;
  try {
    opts.validate();  // normalize (e.g. LCA-GPP forces per-thread counters)
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("mining: %s\n\n", opts.summary().c_str());

  // Telemetry spans the whole mining run (started here, stopped after rule
  // generation) so the JSONL stream covers every phase a consumer could
  // watch live.
  const int telemetry_ms = cli.get_int("telemetry-ms", 0);
  const std::string telemetry_out = cli.get("telemetry-out", "");
  if (telemetry_ms > 0) {
    if (telemetry_out.empty()) {
      std::fputs("error: --telemetry-ms needs --telemetry-out\n", stderr);
      return 1;
    }
    obs::ledger::TelemetryOptions topts;
    topts.period_ms = static_cast<std::uint32_t>(telemetry_ms);
    topts.path = telemetry_out;
    if (!obs::ledger::start(topts)) {
      std::fprintf(stderr, "error: cannot start telemetry to '%s'\n",
                   telemetry_out.c_str());
      return 1;
    }
  } else if (!telemetry_out.empty()) {
    std::fputs("error: --telemetry-out needs --telemetry-ms > 0\n", stderr);
    return 1;
  }

  MiningResult result;
  try {
    result = mine(db, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fputs(result.report().c_str(), stdout);

  if (cli.get_bool("itemsets", false)) {
    std::puts("\nfrequent itemsets:");
    for (const FrequentSet& level : result.levels) {
      for (std::size_t i = 0; i < level.size(); ++i) {
        std::printf("  %s  x%u\n",
                    format_itemset(level.itemset(i)).c_str(),
                    level.count(i));
      }
    }
  }

  if (const std::string out = cli.get("save-itemsets", ""); !out.empty()) {
    save_frequent_itemsets(result.levels, out);
    std::printf("frequent itemsets written to %s\n", out.c_str());
  }

  if (!cli.get_bool("no-rules", false)) {
    const auto rules = generate_rules_parallel(
        result, opts.min_confidence, db.size(), opts.threads);
    if (const std::string out = cli.get("save-rules", ""); !out.empty()) {
      save_rules_csv(rules, out);
      std::printf("rules written to %s\n", out.c_str());
    }
    const auto limit = static_cast<std::size_t>(cli.get_int("max-rules", 25));
    std::printf("\n%zu rules at confidence >= %.0f%%", rules.size(),
                opts.min_confidence * 100.0);
    if (limit > 0 && rules.size() > limit) {
      std::printf(" (showing %zu)", limit);
    }
    std::puts(":");
    for (std::size_t i = 0; i < rules.size() && (limit == 0 || i < limit);
         ++i) {
      std::printf("  %s\n", rules[i].to_string().c_str());
    }
  }

  // Stop telemetry (final record) before the post-mortem artifacts so the
  // stream's last sample and the manifest agree on the totals.
  if (obs::ledger::running()) {
    obs::ledger::stop();
    std::printf("telemetry written to %s (%llu records)\n",
                telemetry_out.c_str(),
                static_cast<unsigned long long>(
                    obs::ledger::records_written()));
  }

  // Artifacts last, so the trace also covers rule generation and the
  // metric totals are final.
  try {
    if (!trace_path.empty()) {
      obs::Tracer::instance().save_chrome_trace(trace_path);
      std::printf("trace written to %s\n", trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      save_run_manifest(
          make_run_manifest("smpmine_cli", dataset_label, db, opts, result),
          metrics_path);
      std::printf("run manifest written to %s\n", metrics_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
