# Empty dependencies file for test_miner_integration.
# This may be replaced when dependencies are built.
