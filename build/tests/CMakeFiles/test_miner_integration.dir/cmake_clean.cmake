file(REMOVE_RECURSE
  "CMakeFiles/test_miner_integration.dir/test_miner_integration.cpp.o"
  "CMakeFiles/test_miner_integration.dir/test_miner_integration.cpp.o.d"
  "test_miner_integration"
  "test_miner_integration.pdb"
  "test_miner_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miner_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
