# Empty compiler generated dependencies file for test_frequent_set.
# This may be replaced when dependencies are built.
