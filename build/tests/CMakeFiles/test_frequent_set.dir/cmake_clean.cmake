file(REMOVE_RECURSE
  "CMakeFiles/test_frequent_set.dir/test_frequent_set.cpp.o"
  "CMakeFiles/test_frequent_set.dir/test_frequent_set.cpp.o.d"
  "test_frequent_set"
  "test_frequent_set.pdb"
  "test_frequent_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequent_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
