file(REMOVE_RECURSE
  "CMakeFiles/test_hash_policy.dir/test_hash_policy.cpp.o"
  "CMakeFiles/test_hash_policy.dir/test_hash_policy.cpp.o.d"
  "test_hash_policy"
  "test_hash_policy.pdb"
  "test_hash_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
