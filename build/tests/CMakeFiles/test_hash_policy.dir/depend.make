# Empty dependencies file for test_hash_policy.
# This may be replaced when dependencies are built.
