file(REMOVE_RECURSE
  "CMakeFiles/test_db_partition.dir/test_db_partition.cpp.o"
  "CMakeFiles/test_db_partition.dir/test_db_partition.cpp.o.d"
  "test_db_partition"
  "test_db_partition.pdb"
  "test_db_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
