# Empty compiler generated dependencies file for test_db_partition.
# This may be replaced when dependencies are built.
