file(REMOVE_RECURSE
  "CMakeFiles/test_hash_tree_build.dir/test_hash_tree_build.cpp.o"
  "CMakeFiles/test_hash_tree_build.dir/test_hash_tree_build.cpp.o.d"
  "test_hash_tree_build"
  "test_hash_tree_build.pdb"
  "test_hash_tree_build[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_tree_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
