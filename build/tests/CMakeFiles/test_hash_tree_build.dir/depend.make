# Empty dependencies file for test_hash_tree_build.
# This may be replaced when dependencies are built.
