file(REMOVE_RECURSE
  "CMakeFiles/test_rules_property.dir/test_rules_property.cpp.o"
  "CMakeFiles/test_rules_property.dir/test_rules_property.cpp.o.d"
  "test_rules_property"
  "test_rules_property.pdb"
  "test_rules_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rules_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
