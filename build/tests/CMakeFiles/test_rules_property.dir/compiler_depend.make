# Empty compiler generated dependencies file for test_rules_property.
# This may be replaced when dependencies are built.
