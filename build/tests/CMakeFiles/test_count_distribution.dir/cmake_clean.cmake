file(REMOVE_RECURSE
  "CMakeFiles/test_count_distribution.dir/test_count_distribution.cpp.o"
  "CMakeFiles/test_count_distribution.dir/test_count_distribution.cpp.o.d"
  "test_count_distribution"
  "test_count_distribution.pdb"
  "test_count_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_count_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
