# Empty compiler generated dependencies file for test_count_distribution.
# This may be replaced when dependencies are built.
