# Empty dependencies file for test_quest_gen.
# This may be replaced when dependencies are built.
