file(REMOVE_RECURSE
  "CMakeFiles/test_quest_gen.dir/test_quest_gen.cpp.o"
  "CMakeFiles/test_quest_gen.dir/test_quest_gen.cpp.o.d"
  "test_quest_gen"
  "test_quest_gen.pdb"
  "test_quest_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quest_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
