file(REMOVE_RECURSE
  "CMakeFiles/test_generalized_differential.dir/test_generalized_differential.cpp.o"
  "CMakeFiles/test_generalized_differential.dir/test_generalized_differential.cpp.o.d"
  "test_generalized_differential"
  "test_generalized_differential.pdb"
  "test_generalized_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generalized_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
