# Empty dependencies file for test_generalized_differential.
# This may be replaced when dependencies are built.
