file(REMOVE_RECURSE
  "CMakeFiles/test_apriori_all.dir/test_apriori_all.cpp.o"
  "CMakeFiles/test_apriori_all.dir/test_apriori_all.cpp.o.d"
  "test_apriori_all"
  "test_apriori_all.pdb"
  "test_apriori_all[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apriori_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
