# Empty compiler generated dependencies file for test_apriori_all.
# This may be replaced when dependencies are built.
