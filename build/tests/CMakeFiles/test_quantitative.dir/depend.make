# Empty dependencies file for test_quantitative.
# This may be replaced when dependencies are built.
