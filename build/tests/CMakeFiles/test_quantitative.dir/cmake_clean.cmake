file(REMOVE_RECURSE
  "CMakeFiles/test_quantitative.dir/test_quantitative.cpp.o"
  "CMakeFiles/test_quantitative.dir/test_quantitative.cpp.o.d"
  "test_quantitative"
  "test_quantitative.pdb"
  "test_quantitative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
