file(REMOVE_RECURSE
  "CMakeFiles/test_sequence_db.dir/test_sequence_db.cpp.o"
  "CMakeFiles/test_sequence_db.dir/test_sequence_db.cpp.o.d"
  "test_sequence_db"
  "test_sequence_db.pdb"
  "test_sequence_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequence_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
