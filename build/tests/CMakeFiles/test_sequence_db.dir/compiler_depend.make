# Empty compiler generated dependencies file for test_sequence_db.
# This may be replaced when dependencies are built.
