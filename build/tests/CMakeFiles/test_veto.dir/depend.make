# Empty dependencies file for test_veto.
# This may be replaced when dependencies are built.
