file(REMOVE_RECURSE
  "CMakeFiles/test_veto.dir/test_veto.cpp.o"
  "CMakeFiles/test_veto.dir/test_veto.cpp.o.d"
  "test_veto"
  "test_veto.pdb"
  "test_veto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_veto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
