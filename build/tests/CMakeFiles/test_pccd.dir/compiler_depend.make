# Empty compiler generated dependencies file for test_pccd.
# This may be replaced when dependencies are built.
