file(REMOVE_RECURSE
  "CMakeFiles/test_pccd.dir/test_pccd.cpp.o"
  "CMakeFiles/test_pccd.dir/test_pccd.cpp.o.d"
  "test_pccd"
  "test_pccd.pdb"
  "test_pccd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pccd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
