file(REMOVE_RECURSE
  "CMakeFiles/test_miner_edge.dir/test_miner_edge.cpp.o"
  "CMakeFiles/test_miner_edge.dir/test_miner_edge.cpp.o.d"
  "test_miner_edge"
  "test_miner_edge.pdb"
  "test_miner_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miner_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
