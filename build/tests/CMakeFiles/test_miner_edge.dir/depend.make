# Empty dependencies file for test_miner_edge.
# This may be replaced when dependencies are built.
