
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_miner_edge.cpp" "tests/CMakeFiles/test_miner_edge.dir/test_miner_edge.cpp.o" "gcc" "tests/CMakeFiles/test_miner_edge.dir/test_miner_edge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smpmine_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_seqpat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_distmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_hashtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_itemset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
