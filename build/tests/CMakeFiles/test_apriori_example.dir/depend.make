# Empty dependencies file for test_apriori_example.
# This may be replaced when dependencies are built.
