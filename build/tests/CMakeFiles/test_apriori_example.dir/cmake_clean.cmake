file(REMOVE_RECURSE
  "CMakeFiles/test_apriori_example.dir/test_apriori_example.cpp.o"
  "CMakeFiles/test_apriori_example.dir/test_apriori_example.cpp.o.d"
  "test_apriori_example"
  "test_apriori_example.pdb"
  "test_apriori_example[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apriori_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
