file(REMOVE_RECURSE
  "CMakeFiles/test_tree_remap.dir/test_tree_remap.cpp.o"
  "CMakeFiles/test_tree_remap.dir/test_tree_remap.cpp.o.d"
  "test_tree_remap"
  "test_tree_remap.pdb"
  "test_tree_remap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
