# Empty dependencies file for test_tree_remap.
# This may be replaced when dependencies are built.
