file(REMOVE_RECURSE
  "CMakeFiles/test_db_io.dir/test_db_io.cpp.o"
  "CMakeFiles/test_db_io.dir/test_db_io.cpp.o.d"
  "test_db_io"
  "test_db_io.pdb"
  "test_db_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
