# Empty compiler generated dependencies file for test_db_io.
# This may be replaced when dependencies are built.
