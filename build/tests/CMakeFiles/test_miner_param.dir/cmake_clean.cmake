file(REMOVE_RECURSE
  "CMakeFiles/test_miner_param.dir/test_miner_param.cpp.o"
  "CMakeFiles/test_miner_param.dir/test_miner_param.cpp.o.d"
  "test_miner_param"
  "test_miner_param.pdb"
  "test_miner_param[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miner_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
