# Empty dependencies file for test_miner_param.
# This may be replaced when dependencies are built.
