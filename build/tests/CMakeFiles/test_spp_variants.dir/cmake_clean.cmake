file(REMOVE_RECURSE
  "CMakeFiles/test_spp_variants.dir/test_spp_variants.cpp.o"
  "CMakeFiles/test_spp_variants.dir/test_spp_variants.cpp.o.d"
  "test_spp_variants"
  "test_spp_variants.pdb"
  "test_spp_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spp_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
