# Empty compiler generated dependencies file for test_hash_tree_count.
# This may be replaced when dependencies are built.
