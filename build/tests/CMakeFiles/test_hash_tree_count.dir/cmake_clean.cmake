file(REMOVE_RECURSE
  "CMakeFiles/test_hash_tree_count.dir/test_hash_tree_count.cpp.o"
  "CMakeFiles/test_hash_tree_count.dir/test_hash_tree_count.cpp.o.d"
  "test_hash_tree_count"
  "test_hash_tree_count.pdb"
  "test_hash_tree_count[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_tree_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
