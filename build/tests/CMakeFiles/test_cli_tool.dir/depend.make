# Empty dependencies file for test_cli_tool.
# This may be replaced when dependencies are built.
