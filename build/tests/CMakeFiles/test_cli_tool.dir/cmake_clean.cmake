file(REMOVE_RECURSE
  "CMakeFiles/test_cli_tool.dir/test_cli_tool.cpp.o"
  "CMakeFiles/test_cli_tool.dir/test_cli_tool.cpp.o.d"
  "test_cli_tool"
  "test_cli_tool.pdb"
  "test_cli_tool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
