file(REMOVE_RECURSE
  "CMakeFiles/smpmine_cli.dir/smpmine_cli.cpp.o"
  "CMakeFiles/smpmine_cli.dir/smpmine_cli.cpp.o.d"
  "smpmine"
  "smpmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
