# Empty compiler generated dependencies file for smpmine_cli.
# This may be replaced when dependencies are built.
