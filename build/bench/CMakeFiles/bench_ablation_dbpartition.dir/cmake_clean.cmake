file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dbpartition.dir/bench_ablation_dbpartition.cpp.o"
  "CMakeFiles/bench_ablation_dbpartition.dir/bench_ablation_dbpartition.cpp.o.d"
  "bench_ablation_dbpartition"
  "bench_ablation_dbpartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dbpartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
