# Empty compiler generated dependencies file for bench_ablation_dbpartition.
# This may be replaced when dependencies are built.
