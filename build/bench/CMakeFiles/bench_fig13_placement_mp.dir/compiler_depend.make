# Empty compiler generated dependencies file for bench_fig13_placement_mp.
# This may be replaced when dependencies are built.
