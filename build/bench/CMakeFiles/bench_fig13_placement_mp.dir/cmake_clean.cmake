file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_placement_mp.dir/bench_fig13_placement_mp.cpp.o"
  "CMakeFiles/bench_fig13_placement_mp.dir/bench_fig13_placement_mp.cpp.o.d"
  "bench_fig13_placement_mp"
  "bench_fig13_placement_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_placement_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
