file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_shortcircuit.dir/bench_fig9_shortcircuit.cpp.o"
  "CMakeFiles/bench_fig9_shortcircuit.dir/bench_fig9_shortcircuit.cpp.o.d"
  "bench_fig9_shortcircuit"
  "bench_fig9_shortcircuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_shortcircuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
