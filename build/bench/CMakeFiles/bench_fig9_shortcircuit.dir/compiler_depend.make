# Empty compiler generated dependencies file for bench_fig9_shortcircuit.
# This may be replaced when dependencies are built.
