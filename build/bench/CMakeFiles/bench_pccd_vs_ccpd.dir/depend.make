# Empty dependencies file for bench_pccd_vs_ccpd.
# This may be replaced when dependencies are built.
