file(REMOVE_RECURSE
  "CMakeFiles/bench_pccd_vs_ccpd.dir/bench_pccd_vs_ccpd.cpp.o"
  "CMakeFiles/bench_pccd_vs_ccpd.dir/bench_pccd_vs_ccpd.cpp.o.d"
  "bench_pccd_vs_ccpd"
  "bench_pccd_vs_ccpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pccd_vs_ccpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
