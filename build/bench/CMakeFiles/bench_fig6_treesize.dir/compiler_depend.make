# Empty compiler generated dependencies file for bench_fig6_treesize.
# This may be replaced when dependencies are built.
