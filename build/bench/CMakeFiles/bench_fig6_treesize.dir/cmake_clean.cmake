file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_treesize.dir/bench_fig6_treesize.cpp.o"
  "CMakeFiles/bench_fig6_treesize.dir/bench_fig6_treesize.cpp.o.d"
  "bench_fig6_treesize"
  "bench_fig6_treesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_treesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
