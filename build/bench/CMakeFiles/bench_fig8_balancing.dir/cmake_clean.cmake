file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_balancing.dir/bench_fig8_balancing.cpp.o"
  "CMakeFiles/bench_fig8_balancing.dir/bench_fig8_balancing.cpp.o.d"
  "bench_fig8_balancing"
  "bench_fig8_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
