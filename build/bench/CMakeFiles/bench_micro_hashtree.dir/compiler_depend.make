# Empty compiler generated dependencies file for bench_micro_hashtree.
# This may be replaced when dependencies are built.
