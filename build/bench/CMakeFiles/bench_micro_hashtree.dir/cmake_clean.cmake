file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hashtree.dir/bench_micro_hashtree.cpp.o"
  "CMakeFiles/bench_micro_hashtree.dir/bench_micro_hashtree.cpp.o.d"
  "bench_micro_hashtree"
  "bench_micro_hashtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hashtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
