# Empty dependencies file for bench_fig7_frequent.
# This may be replaced when dependencies are built.
