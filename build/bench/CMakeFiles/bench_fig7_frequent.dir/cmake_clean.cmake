file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_frequent.dir/bench_fig7_frequent.cpp.o"
  "CMakeFiles/bench_fig7_frequent.dir/bench_fig7_frequent.cpp.o.d"
  "bench_fig7_frequent"
  "bench_fig7_frequent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_frequent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
