file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spp.dir/bench_ablation_spp.cpp.o"
  "CMakeFiles/bench_ablation_spp.dir/bench_ablation_spp.cpp.o.d"
  "bench_ablation_spp"
  "bench_ablation_spp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
