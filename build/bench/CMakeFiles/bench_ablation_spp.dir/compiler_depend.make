# Empty compiler generated dependencies file for bench_ablation_spp.
# This may be replaced when dependencies are built.
