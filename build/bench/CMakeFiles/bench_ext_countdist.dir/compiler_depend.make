# Empty compiler generated dependencies file for bench_ext_countdist.
# This may be replaced when dependencies are built.
