file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_countdist.dir/bench_ext_countdist.cpp.o"
  "CMakeFiles/bench_ext_countdist.dir/bench_ext_countdist.cpp.o.d"
  "bench_ext_countdist"
  "bench_ext_countdist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_countdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
