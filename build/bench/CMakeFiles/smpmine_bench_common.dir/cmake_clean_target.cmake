file(REMOVE_RECURSE
  "../lib/libsmpmine_bench_common.a"
)
