file(REMOVE_RECURSE
  "../lib/libsmpmine_bench_common.a"
  "../lib/libsmpmine_bench_common.pdb"
  "CMakeFiles/smpmine_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/smpmine_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
