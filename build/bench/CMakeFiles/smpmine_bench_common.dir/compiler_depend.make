# Empty compiler generated dependencies file for smpmine_bench_common.
# This may be replaced when dependencies are built.
