# Empty compiler generated dependencies file for bench_ext_seqpat.
# This may be replaced when dependencies are built.
