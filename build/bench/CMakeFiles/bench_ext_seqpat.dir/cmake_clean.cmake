file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_seqpat.dir/bench_ext_seqpat.cpp.o"
  "CMakeFiles/bench_ext_seqpat.dir/bench_ext_seqpat.cpp.o.d"
  "bench_ext_seqpat"
  "bench_ext_seqpat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_seqpat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
