file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sc_periter.dir/bench_fig10_sc_periter.cpp.o"
  "CMakeFiles/bench_fig10_sc_periter.dir/bench_fig10_sc_periter.cpp.o.d"
  "bench_fig10_sc_periter"
  "bench_fig10_sc_periter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sc_periter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
