# Empty dependencies file for bench_fig10_sc_periter.
# This may be replaced when dependencies are built.
