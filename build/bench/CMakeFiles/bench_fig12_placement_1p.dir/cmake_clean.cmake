file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_placement_1p.dir/bench_fig12_placement_1p.cpp.o"
  "CMakeFiles/bench_fig12_placement_1p.dir/bench_fig12_placement_1p.cpp.o.d"
  "bench_fig12_placement_1p"
  "bench_fig12_placement_1p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_placement_1p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
