# Empty dependencies file for bench_fig12_placement_1p.
# This may be replaced when dependencies are built.
