file(REMOVE_RECURSE
  "CMakeFiles/placement_study.dir/placement_study.cpp.o"
  "CMakeFiles/placement_study.dir/placement_study.cpp.o.d"
  "placement_study"
  "placement_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
