file(REMOVE_RECURSE
  "CMakeFiles/grocery_taxonomy.dir/grocery_taxonomy.cpp.o"
  "CMakeFiles/grocery_taxonomy.dir/grocery_taxonomy.cpp.o.d"
  "grocery_taxonomy"
  "grocery_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grocery_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
