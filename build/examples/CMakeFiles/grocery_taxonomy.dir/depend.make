# Empty dependencies file for grocery_taxonomy.
# This may be replaced when dependencies are built.
