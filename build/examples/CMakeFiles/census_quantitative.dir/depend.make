# Empty dependencies file for census_quantitative.
# This may be replaced when dependencies are built.
