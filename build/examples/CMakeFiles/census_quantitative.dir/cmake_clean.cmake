file(REMOVE_RECURSE
  "CMakeFiles/census_quantitative.dir/census_quantitative.cpp.o"
  "CMakeFiles/census_quantitative.dir/census_quantitative.cpp.o.d"
  "census_quantitative"
  "census_quantitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_quantitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
