# Empty dependencies file for retail_basket.
# This may be replaced when dependencies are built.
