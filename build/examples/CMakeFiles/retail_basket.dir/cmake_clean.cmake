file(REMOVE_RECURSE
  "CMakeFiles/retail_basket.dir/retail_basket.cpp.o"
  "CMakeFiles/retail_basket.dir/retail_basket.cpp.o.d"
  "retail_basket"
  "retail_basket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_basket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
