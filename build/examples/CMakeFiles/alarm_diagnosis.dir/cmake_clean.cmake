file(REMOVE_RECURSE
  "CMakeFiles/alarm_diagnosis.dir/alarm_diagnosis.cpp.o"
  "CMakeFiles/alarm_diagnosis.dir/alarm_diagnosis.cpp.o.d"
  "alarm_diagnosis"
  "alarm_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alarm_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
