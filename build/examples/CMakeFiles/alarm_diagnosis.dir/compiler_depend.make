# Empty compiler generated dependencies file for alarm_diagnosis.
# This may be replaced when dependencies are built.
