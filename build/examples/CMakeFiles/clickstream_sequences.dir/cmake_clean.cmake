file(REMOVE_RECURSE
  "CMakeFiles/clickstream_sequences.dir/clickstream_sequences.cpp.o"
  "CMakeFiles/clickstream_sequences.dir/clickstream_sequences.cpp.o.d"
  "clickstream_sequences"
  "clickstream_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
