# Empty compiler generated dependencies file for clickstream_sequences.
# This may be replaced when dependencies are built.
