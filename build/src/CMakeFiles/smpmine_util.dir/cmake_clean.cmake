file(REMOVE_RECURSE
  "CMakeFiles/smpmine_util.dir/util/cli.cpp.o"
  "CMakeFiles/smpmine_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/smpmine_util.dir/util/logging.cpp.o"
  "CMakeFiles/smpmine_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/smpmine_util.dir/util/rng.cpp.o"
  "CMakeFiles/smpmine_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/smpmine_util.dir/util/table.cpp.o"
  "CMakeFiles/smpmine_util.dir/util/table.cpp.o.d"
  "CMakeFiles/smpmine_util.dir/util/timer.cpp.o"
  "CMakeFiles/smpmine_util.dir/util/timer.cpp.o.d"
  "libsmpmine_util.a"
  "libsmpmine_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
