# Empty dependencies file for smpmine_util.
# This may be replaced when dependencies are built.
