file(REMOVE_RECURSE
  "libsmpmine_util.a"
)
