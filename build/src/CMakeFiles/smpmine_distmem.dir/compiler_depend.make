# Empty compiler generated dependencies file for smpmine_distmem.
# This may be replaced when dependencies are built.
