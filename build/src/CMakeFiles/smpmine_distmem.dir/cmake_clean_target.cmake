file(REMOVE_RECURSE
  "libsmpmine_distmem.a"
)
