file(REMOVE_RECURSE
  "CMakeFiles/smpmine_distmem.dir/distmem/count_distribution.cpp.o"
  "CMakeFiles/smpmine_distmem.dir/distmem/count_distribution.cpp.o.d"
  "libsmpmine_distmem.a"
  "libsmpmine_distmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_distmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
