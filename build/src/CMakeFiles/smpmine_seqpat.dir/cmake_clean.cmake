file(REMOVE_RECURSE
  "CMakeFiles/smpmine_seqpat.dir/seqpat/apriori_all.cpp.o"
  "CMakeFiles/smpmine_seqpat.dir/seqpat/apriori_all.cpp.o.d"
  "CMakeFiles/smpmine_seqpat.dir/seqpat/sequence_db.cpp.o"
  "CMakeFiles/smpmine_seqpat.dir/seqpat/sequence_db.cpp.o.d"
  "libsmpmine_seqpat.a"
  "libsmpmine_seqpat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_seqpat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
