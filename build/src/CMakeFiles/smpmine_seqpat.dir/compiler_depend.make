# Empty compiler generated dependencies file for smpmine_seqpat.
# This may be replaced when dependencies are built.
