file(REMOVE_RECURSE
  "libsmpmine_seqpat.a"
)
