# Empty dependencies file for smpmine_hashtree.
# This may be replaced when dependencies are built.
