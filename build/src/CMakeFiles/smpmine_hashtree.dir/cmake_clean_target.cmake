file(REMOVE_RECURSE
  "libsmpmine_hashtree.a"
)
