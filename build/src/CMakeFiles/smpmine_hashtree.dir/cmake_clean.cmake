file(REMOVE_RECURSE
  "CMakeFiles/smpmine_hashtree.dir/hashtree/hash_policy.cpp.o"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/hash_policy.cpp.o.d"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/hash_tree.cpp.o"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/hash_tree.cpp.o.d"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/tree_build.cpp.o"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/tree_build.cpp.o.d"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/tree_count.cpp.o"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/tree_count.cpp.o.d"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/tree_remap.cpp.o"
  "CMakeFiles/smpmine_hashtree.dir/hashtree/tree_remap.cpp.o.d"
  "libsmpmine_hashtree.a"
  "libsmpmine_hashtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_hashtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
