file(REMOVE_RECURSE
  "CMakeFiles/smpmine_taxonomy.dir/taxonomy/generalized.cpp.o"
  "CMakeFiles/smpmine_taxonomy.dir/taxonomy/generalized.cpp.o.d"
  "CMakeFiles/smpmine_taxonomy.dir/taxonomy/taxonomy.cpp.o"
  "CMakeFiles/smpmine_taxonomy.dir/taxonomy/taxonomy.cpp.o.d"
  "libsmpmine_taxonomy.a"
  "libsmpmine_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
