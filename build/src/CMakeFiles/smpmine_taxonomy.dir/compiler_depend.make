# Empty compiler generated dependencies file for smpmine_taxonomy.
# This may be replaced when dependencies are built.
