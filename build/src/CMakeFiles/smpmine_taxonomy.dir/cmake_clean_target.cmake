file(REMOVE_RECURSE
  "libsmpmine_taxonomy.a"
)
