file(REMOVE_RECURSE
  "CMakeFiles/smpmine_itemset.dir/itemset/eqclass.cpp.o"
  "CMakeFiles/smpmine_itemset.dir/itemset/eqclass.cpp.o.d"
  "CMakeFiles/smpmine_itemset.dir/itemset/frequent_set.cpp.o"
  "CMakeFiles/smpmine_itemset.dir/itemset/frequent_set.cpp.o.d"
  "CMakeFiles/smpmine_itemset.dir/itemset/itemset.cpp.o"
  "CMakeFiles/smpmine_itemset.dir/itemset/itemset.cpp.o.d"
  "libsmpmine_itemset.a"
  "libsmpmine_itemset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_itemset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
