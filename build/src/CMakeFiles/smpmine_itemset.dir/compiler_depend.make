# Empty compiler generated dependencies file for smpmine_itemset.
# This may be replaced when dependencies are built.
