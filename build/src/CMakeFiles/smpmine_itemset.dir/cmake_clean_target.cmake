file(REMOVE_RECURSE
  "libsmpmine_itemset.a"
)
