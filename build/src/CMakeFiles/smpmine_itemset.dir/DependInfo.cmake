
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/itemset/eqclass.cpp" "src/CMakeFiles/smpmine_itemset.dir/itemset/eqclass.cpp.o" "gcc" "src/CMakeFiles/smpmine_itemset.dir/itemset/eqclass.cpp.o.d"
  "/root/repo/src/itemset/frequent_set.cpp" "src/CMakeFiles/smpmine_itemset.dir/itemset/frequent_set.cpp.o" "gcc" "src/CMakeFiles/smpmine_itemset.dir/itemset/frequent_set.cpp.o.d"
  "/root/repo/src/itemset/itemset.cpp" "src/CMakeFiles/smpmine_itemset.dir/itemset/itemset.cpp.o" "gcc" "src/CMakeFiles/smpmine_itemset.dir/itemset/itemset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smpmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
