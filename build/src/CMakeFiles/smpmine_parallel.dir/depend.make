# Empty dependencies file for smpmine_parallel.
# This may be replaced when dependencies are built.
