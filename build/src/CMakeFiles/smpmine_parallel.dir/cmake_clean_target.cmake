file(REMOVE_RECURSE
  "libsmpmine_parallel.a"
)
