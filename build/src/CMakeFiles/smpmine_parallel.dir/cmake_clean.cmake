file(REMOVE_RECURSE
  "CMakeFiles/smpmine_parallel.dir/parallel/partition.cpp.o"
  "CMakeFiles/smpmine_parallel.dir/parallel/partition.cpp.o.d"
  "CMakeFiles/smpmine_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/smpmine_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libsmpmine_parallel.a"
  "libsmpmine_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
