# Empty compiler generated dependencies file for smpmine_quant.
# This may be replaced when dependencies are built.
