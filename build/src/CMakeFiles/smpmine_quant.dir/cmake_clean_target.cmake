file(REMOVE_RECURSE
  "libsmpmine_quant.a"
)
