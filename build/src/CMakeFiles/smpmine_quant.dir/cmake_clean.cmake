file(REMOVE_RECURSE
  "CMakeFiles/smpmine_quant.dir/quant/quantitative.cpp.o"
  "CMakeFiles/smpmine_quant.dir/quant/quantitative.cpp.o.d"
  "libsmpmine_quant.a"
  "libsmpmine_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
