file(REMOVE_RECURSE
  "CMakeFiles/smpmine_alloc.dir/alloc/alloc_stats.cpp.o"
  "CMakeFiles/smpmine_alloc.dir/alloc/alloc_stats.cpp.o.d"
  "CMakeFiles/smpmine_alloc.dir/alloc/placement.cpp.o"
  "CMakeFiles/smpmine_alloc.dir/alloc/placement.cpp.o.d"
  "CMakeFiles/smpmine_alloc.dir/alloc/region.cpp.o"
  "CMakeFiles/smpmine_alloc.dir/alloc/region.cpp.o.d"
  "libsmpmine_alloc.a"
  "libsmpmine_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
