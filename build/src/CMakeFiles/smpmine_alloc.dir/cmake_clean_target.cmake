file(REMOVE_RECURSE
  "libsmpmine_alloc.a"
)
