# Empty compiler generated dependencies file for smpmine_alloc.
# This may be replaced when dependencies are built.
