
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/alloc_stats.cpp" "src/CMakeFiles/smpmine_alloc.dir/alloc/alloc_stats.cpp.o" "gcc" "src/CMakeFiles/smpmine_alloc.dir/alloc/alloc_stats.cpp.o.d"
  "/root/repo/src/alloc/placement.cpp" "src/CMakeFiles/smpmine_alloc.dir/alloc/placement.cpp.o" "gcc" "src/CMakeFiles/smpmine_alloc.dir/alloc/placement.cpp.o.d"
  "/root/repo/src/alloc/region.cpp" "src/CMakeFiles/smpmine_alloc.dir/alloc/region.cpp.o" "gcc" "src/CMakeFiles/smpmine_alloc.dir/alloc/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smpmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
