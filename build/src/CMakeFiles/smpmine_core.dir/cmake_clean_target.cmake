file(REMOVE_RECURSE
  "libsmpmine_core.a"
)
