file(REMOVE_RECURSE
  "CMakeFiles/smpmine_core.dir/core/apriori_seq.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/apriori_seq.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/brute_force.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/brute_force.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/candidate_gen.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/candidate_gen.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/ccpd.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/ccpd.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/miner.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/miner.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/options.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/options.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/pccd.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/pccd.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/results_io.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/results_io.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/rules.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/rules.cpp.o.d"
  "CMakeFiles/smpmine_core.dir/core/stats.cpp.o"
  "CMakeFiles/smpmine_core.dir/core/stats.cpp.o.d"
  "libsmpmine_core.a"
  "libsmpmine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
