# Empty compiler generated dependencies file for smpmine_core.
# This may be replaced when dependencies are built.
