
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apriori_seq.cpp" "src/CMakeFiles/smpmine_core.dir/core/apriori_seq.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/apriori_seq.cpp.o.d"
  "/root/repo/src/core/brute_force.cpp" "src/CMakeFiles/smpmine_core.dir/core/brute_force.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/brute_force.cpp.o.d"
  "/root/repo/src/core/candidate_gen.cpp" "src/CMakeFiles/smpmine_core.dir/core/candidate_gen.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/candidate_gen.cpp.o.d"
  "/root/repo/src/core/ccpd.cpp" "src/CMakeFiles/smpmine_core.dir/core/ccpd.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/ccpd.cpp.o.d"
  "/root/repo/src/core/miner.cpp" "src/CMakeFiles/smpmine_core.dir/core/miner.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/miner.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/CMakeFiles/smpmine_core.dir/core/options.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/options.cpp.o.d"
  "/root/repo/src/core/pccd.cpp" "src/CMakeFiles/smpmine_core.dir/core/pccd.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/pccd.cpp.o.d"
  "/root/repo/src/core/results_io.cpp" "src/CMakeFiles/smpmine_core.dir/core/results_io.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/results_io.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/CMakeFiles/smpmine_core.dir/core/rules.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/rules.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/smpmine_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/smpmine_core.dir/core/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smpmine_hashtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_itemset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smpmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
