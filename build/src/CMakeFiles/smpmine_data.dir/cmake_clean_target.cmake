file(REMOVE_RECURSE
  "libsmpmine_data.a"
)
