# Empty compiler generated dependencies file for smpmine_data.
# This may be replaced when dependencies are built.
