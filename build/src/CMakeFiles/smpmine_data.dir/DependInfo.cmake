
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/database.cpp" "src/CMakeFiles/smpmine_data.dir/data/database.cpp.o" "gcc" "src/CMakeFiles/smpmine_data.dir/data/database.cpp.o.d"
  "/root/repo/src/data/db_io.cpp" "src/CMakeFiles/smpmine_data.dir/data/db_io.cpp.o" "gcc" "src/CMakeFiles/smpmine_data.dir/data/db_io.cpp.o.d"
  "/root/repo/src/data/db_partition.cpp" "src/CMakeFiles/smpmine_data.dir/data/db_partition.cpp.o" "gcc" "src/CMakeFiles/smpmine_data.dir/data/db_partition.cpp.o.d"
  "/root/repo/src/data/quest_gen.cpp" "src/CMakeFiles/smpmine_data.dir/data/quest_gen.cpp.o" "gcc" "src/CMakeFiles/smpmine_data.dir/data/quest_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smpmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
