file(REMOVE_RECURSE
  "CMakeFiles/smpmine_data.dir/data/database.cpp.o"
  "CMakeFiles/smpmine_data.dir/data/database.cpp.o.d"
  "CMakeFiles/smpmine_data.dir/data/db_io.cpp.o"
  "CMakeFiles/smpmine_data.dir/data/db_io.cpp.o.d"
  "CMakeFiles/smpmine_data.dir/data/db_partition.cpp.o"
  "CMakeFiles/smpmine_data.dir/data/db_partition.cpp.o.d"
  "CMakeFiles/smpmine_data.dir/data/quest_gen.cpp.o"
  "CMakeFiles/smpmine_data.dir/data/quest_gen.cpp.o.d"
  "libsmpmine_data.a"
  "libsmpmine_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpmine_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
