// Multi-level association mining over a product hierarchy.
//
//   $ ./grocery_taxonomy [--baskets 20000] [--support 0.02] [--interest 1.3]
//
// Builds a small grocery is-a hierarchy, synthesizes baskets of *leaf*
// products, and mines generalized rules with Cumulate: rules may relate
// categories ("dairy => bread") even when no single product pair is
// frequent. The R-interest filter then removes specialized rules already
// explained by their category-level generalization.
#include <cstdio>
#include <map>
#include <string>

#include "core/rules.hpp"
#include "taxonomy/generalized.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace smpmine;

namespace {

// Item ids and names. Leaves 0..9, categories 10..14.
const std::map<item_t, std::string> kNames = {
    {0, "whole milk"}, {1, "skim milk"},   {2, "cheddar"},
    {3, "yogurt"},     {4, "baguette"},    {5, "rye bread"},
    {6, "lager"},      {7, "stout"},       {8, "red wine"},
    {9, "white wine"}, {10, "milk"},       {11, "dairy"},
    {12, "bread"},     {13, "beer"},       {14, "wine"},
};

std::string name_of(item_t item) {
  const auto it = kNames.find(item);
  return it == kNames.end() ? std::to_string(item) : it->second;
}

std::string render(std::span<const item_t> items) {
  std::string out = "{";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += name_of(items[i]);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("baskets", "number of baskets", "20000");
  cli.add_flag("support", "minimum support (fraction)", "0.02");
  cli.add_flag("confidence", "minimum confidence", "0.6");
  cli.add_flag("interest", "R-interest threshold (1 disables little)", "1.3");
  if (!cli.parse(argc, argv)) return 1;

  Taxonomy tax(15);
  tax.add_edge(0, 10);   // whole milk  -> milk
  tax.add_edge(1, 10);   // skim milk   -> milk
  tax.add_edge(10, 11);  // milk        -> dairy
  tax.add_edge(2, 11);   // cheddar     -> dairy
  tax.add_edge(3, 11);   // yogurt      -> dairy
  tax.add_edge(4, 12);   // baguette    -> bread
  tax.add_edge(5, 12);   // rye bread   -> bread
  tax.add_edge(6, 13);   // lager       -> beer
  tax.add_edge(7, 13);   // stout       -> beer
  tax.add_edge(8, 14);   // red wine    -> wine
  tax.add_edge(9, 14);   // white wine  -> wine
  tax.freeze();

  // Baskets: a latent "dairy+bread breakfast" habit picks *some* milk
  // product and *some* bread — frequent only at category level — plus an
  // occasional beer-or-wine purchase and noise.
  Rng rng(2026);
  Database db;
  const auto baskets = static_cast<std::size_t>(cli.get_int("baskets", 20'000));
  std::vector<item_t> basket;
  for (std::size_t b = 0; b < baskets; ++b) {
    basket.clear();
    if (rng.uniform01() < 0.30) {  // breakfast habit
      basket.push_back(static_cast<item_t>(rng.uniform(4)));      // dairy leaf
      basket.push_back(static_cast<item_t>(4 + rng.uniform(2)));  // bread leaf
    }
    if (rng.uniform01() < 0.15) {  // drinks
      basket.push_back(static_cast<item_t>(6 + rng.uniform(4)));
    }
    const std::size_t noise = rng.uniform(3);
    for (std::size_t i = 0; i < noise; ++i) {
      basket.push_back(static_cast<item_t>(rng.uniform(10)));
    }
    if (!basket.empty()) db.add_transaction(basket);
  }
  std::printf("synthesized %zu baskets over %zu leaf products\n", db.size(),
              tax.leaves().size());

  MinerOptions opts;
  opts.min_support = cli.get_double("support", 0.02);
  opts.min_confidence = cli.get_double("confidence", 0.6);
  opts.threads = 2;

  const MiningResult result = mine_generalized(db, tax, opts);
  std::printf("generalized frequent itemsets: %llu\n",
              static_cast<unsigned long long>(result.total_frequent()));

  auto rules = generate_rules(result, opts.min_confidence, db.size());
  std::printf("rules before interest filter: %zu\n", rules.size());
  const double interest = cli.get_double("interest", 1.3);
  const auto interesting =
      filter_interesting_rules(rules, tax, result, interest, db.size());
  std::printf("rules after R=%.2f interest filter: %zu\n\n", interest,
              interesting.size());

  std::puts("top generalized rules:");
  std::size_t shown = 0;
  for (const Rule& r : interesting) {
    std::printf("  %s => %s  (sup %.3f, conf %.2f, lift %.2f)\n",
                render(r.antecedent).c_str(), render(r.consequent).c_str(),
                r.support, r.confidence, r.lift);
    if (++shown == 12) break;
  }
  std::puts("\nnote how category-level rules (milk => bread) survive while "
            "product-level specializations they fully explain are filtered "
            "out.");
  return 0;
}
