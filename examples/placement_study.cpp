// Placement study — using the library's memory-placement machinery the way
// Section 5 of the paper does, as a standalone investigation.
//
//   $ ./placement_study [--support 0.005] [--threads 4] [--scale 0.2]
//
// Mines one dataset under every placement policy and prints a side-by-side
// of time, locality proxies, and the false-sharing hazard metric, then
// explains what each policy changed. A template for tuning placement on
// your own workload.
#include <cstdio>

#include "core/miner.hpp"
#include "data/quest_gen.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace smpmine;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  cli.add_flag("threads", "mining threads", "4");
  cli.add_flag("scale", "fraction of T10.I4.D100K to generate", "0.2");
  if (!cli.parse(argc, argv)) return 1;

  QuestParams gen = *QuestParams::from_name("T10.I4.D100K");
  gen = scaled(gen, cli.get_double("scale", 0.2));
  std::printf("dataset: %s\n", gen.name().c_str());
  const Database db = generate_quest(gen);

  TextTable table({"policy", "wall_s", "modeled_s", "same-line rate",
                   "stride KB", "ctr/itemset sharing", "tree MB (peak)"});
  for (const PlacementPolicy policy : kAllPolicies) {
    MinerOptions options;
    options.min_support = cli.get_double("support", 0.005);
    options.threads = static_cast<std::uint32_t>(cli.get_int("threads", 4));
    options.placement = policy;
    options.collect_locality = true;
    const MiningResult r = mine(db, options);

    double same_line = 0.0, stride = 0.0, sharing = 0.0, weight = 0.0;
    std::uint64_t peak_bytes = 0;
    for (const auto& it : r.iterations) {
      const auto w = static_cast<double>(it.candidates);
      same_line += it.locality_same_line_rate * w;
      stride += it.locality_mean_stride * w;
      sharing += it.counter_itemset_line_sharing * w;
      weight += w;
      peak_bytes = std::max(peak_bytes, it.tree_bytes);
    }
    if (weight > 0) {
      same_line /= weight;
      stride /= weight;
      sharing /= weight;
    }
    table.add_row({to_string(policy), TextTable::num(r.total_seconds, 3),
                   TextTable::num(r.modeled_total_seconds(), 3),
                   TextTable::num(same_line, 3),
                   TextTable::num(stride / 1024.0, 0),
                   TextTable::pct(sharing, 0),
                   TextTable::num(static_cast<double>(peak_bytes) / 1e6, 1)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts(
      "\nhow to read this:\n"
      "  CCPD     malloc everywhere: scattered blocks, counters inline.\n"
      "  SPP      one bump region in creation order: stride collapses.\n"
      "  L-SPP    + counters in their own region: sharing drops to 0%.\n"
      "  L-LPP    + (list node, itemset) co-reserved pairs.\n"
      "  GPP      + depth-first remap: trace order == memory order.\n"
      "  L-GPP    GPP with segregated counters.\n"
      "  LCA-GPP  per-thread counter arrays + reduction: no locks, no\n"
      "           false sharing; the reduce step is the price.");
  return 0;
}
