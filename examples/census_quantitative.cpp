// Quantitative association rules over relational data — the
// "people who..." analysis Srikant & Agrawal motivate with census tables.
//
//   $ ./census_quantitative [--rows 30000] [--support 0.05]
//
// Synthesizes a survey table (age, income, commute_km numeric; married,
// cars categorical) with planted correlations, discretizes numeric
// attributes into equi-depth intervals plus support-capped ranges, and
// mines rules rendered in attribute terms.
#include <algorithm>
#include <cstdio>

#include "quant/quantitative.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace smpmine;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("rows", "survey rows", "30000");
  cli.add_flag("support", "minimum support (fraction)", "0.05");
  cli.add_flag("confidence", "minimum confidence", "0.7");
  cli.add_flag("top", "rules to print", "15");
  if (!cli.parse(argc, argv)) return 1;

  QuantTable table({{"age", AttrKind::Numeric, 6},
                    {"income_k", AttrKind::Numeric, 6},
                    {"commute_km", AttrKind::Numeric, 4},
                    {"married", AttrKind::Categorical},
                    {"cars", AttrKind::Categorical}});

  // Planted structure: income grows with age; married couples own more
  // cars; long commutes cluster with high car ownership.
  Rng rng(321);
  const auto rows = static_cast<std::size_t>(cli.get_int("rows", 30'000));
  for (std::size_t r = 0; r < rows; ++r) {
    const double age = 18.0 + rng.uniform(50);
    const double income =
        20.0 + (age - 18.0) * 1.2 + rng.normal(0.0, 12.0);
    const double married = age > 28 && rng.uniform01() < 0.7 ? 1.0 : 0.0;
    double cars = married ? 1.0 + (rng.uniform01() < 0.5) : (rng.uniform01() < 0.6);
    const double commute = cars >= 1 ? 5.0 + rng.exponential(20.0)
                                     : rng.exponential(6.0);
    if (commute > 40 && rng.uniform01() < 0.6) cars = 2.0;
    table.add_row(std::vector<double>{age, std::max(0.0, income),
                                      commute, married, cars});
  }
  std::printf("survey: %zu rows x %zu attributes\n", table.num_rows(),
              table.num_attributes());

  MinerOptions opts;
  opts.min_support = cli.get_double("support", 0.05);
  opts.min_confidence = cli.get_double("confidence", 0.7);
  opts.threads = 2;

  const auto rules = mine_quantitative(table, opts);
  std::printf("%zu rules at support >= %.1f%%, confidence >= %.0f%%\n\n",
              rules.size(), opts.min_support * 100.0,
              opts.min_confidence * 100.0);

  // Highest-lift rules are the interesting ones (confidence alone rewards
  // popular consequents).
  std::vector<const QuantRule*> by_lift;
  for (const QuantRule& r : rules) by_lift.push_back(&r);
  std::sort(by_lift.begin(), by_lift.end(),
            [](const QuantRule* a, const QuantRule* b) {
              return a->lift > b->lift;
            });
  const auto top = static_cast<std::size_t>(cli.get_int("top", 15));
  std::puts("top rules by lift:");
  for (std::size_t i = 0; i < by_lift.size() && i < top; ++i) {
    std::printf("  %s  (sup %.3f, conf %.2f, lift %.2f)\n",
                by_lift[i]->text.c_str(), by_lift[i]->support,
                by_lift[i]->confidence, by_lift[i]->lift);
  }
  return 0;
}
