// Sequential-pattern mining on visitor clickstreams.
//
//   $ ./clickstream_sequences [--visitors 5000] [--support 0.05]
//
// Models a storefront where each visitor's sessions form a time-ordered
// sequence of page sets. AprioriAll finds patterns like
// <(landing) (product, reviews) (checkout)> — "visitors who read reviews in
// a session come back and check out". Demonstrates the seqpat public API
// end-to-end.
#include <cstdio>
#include <map>
#include <string>

#include "seqpat/apriori_all.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace smpmine;

namespace {

const std::map<item_t, std::string> kPages = {
    {0, "landing"},  {1, "search"},   {2, "product"}, {3, "reviews"},
    {4, "cart"},     {5, "checkout"}, {6, "support"}, {7, "returns"},
    {8, "blog"},     {9, "account"},
};

std::string render(const SequencePattern& p) {
  std::string out;
  for (std::size_t e = 0; e < p.elements.size(); ++e) {
    out += e ? " -> (" : "(";
    for (std::size_t i = 0; i < p.elements[e].size(); ++i) {
      if (i) out += ", ";
      const auto it = kPages.find(p.elements[e][i]);
      out += it == kPages.end() ? std::to_string(p.elements[e][i]) : it->second;
    }
    out += ")";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("visitors", "number of visitors", "5000");
  cli.add_flag("support", "minimum support (fraction of visitors)", "0.05");
  cli.add_flag("threads", "mining threads", "2");
  cli.add_flag("all", "print all frequent patterns, not just maximal");
  if (!cli.parse(argc, argv)) return 1;

  // Behavioural archetypes: buyers browse then purchase across sessions;
  // researchers read reviews first; casual visitors bounce around.
  Rng rng(99);
  SequenceDatabase db;
  const auto visitors = static_cast<std::size_t>(cli.get_int("visitors", 5000));
  for (std::size_t v = 0; v < visitors; ++v) {
    std::vector<std::vector<item_t>> sessions;
    const double archetype = rng.uniform01();
    if (archetype < 0.25) {  // buyer
      sessions.push_back({0, 1});
      sessions.push_back({2, 3});
      sessions.push_back({4, 5});
    } else if (archetype < 0.45) {  // researcher, sometimes converts
      sessions.push_back({0, 2, 3});
      sessions.push_back({3, 8});
      if (rng.uniform01() < 0.5) sessions.push_back({4, 5});
    } else if (archetype < 0.55) {  // returner
      sessions.push_back({9, 7});
      sessions.push_back({6});
    }
    // Noise sessions for everyone.
    const std::size_t noise = 1 + rng.uniform(3);
    for (std::size_t s = 0; s < noise; ++s) {
      std::vector<item_t> session;
      const std::size_t len = 1 + rng.uniform(3);
      for (std::size_t i = 0; i < len; ++i) {
        session.push_back(static_cast<item_t>(rng.uniform(10)));
      }
      const std::size_t at = rng.uniform(sessions.size() + 1);
      sessions.insert(sessions.begin() + static_cast<std::ptrdiff_t>(at),
                      std::move(session));
    }
    db.add_customer(sessions);
  }
  std::printf("synthesized %zu visitors, %zu sessions total\n",
              db.num_customers(), db.total_transactions());

  SeqMineOptions opts;
  opts.min_support = cli.get_double("support", 0.05);
  opts.threads = static_cast<std::uint32_t>(cli.get_int("threads", 2));
  opts.maximal_only = !cli.get_bool("all", false);

  const SeqMiningResult result = mine_sequences(db, opts);
  std::printf(
      "litemset levels: %zu   candidate sequences tried: %llu\n"
      "phases: litemsets %.2fs, transform %.2fs, sequences %.2fs\n\n",
      result.litemsets.size(),
      static_cast<unsigned long long>(result.candidate_sequences),
      result.litemset_seconds, result.transform_seconds,
      result.sequence_seconds);

  std::printf("%s sequential patterns (support = fraction of visitors):\n",
              opts.maximal_only ? "maximal" : "all frequent");
  std::size_t shown = 0;
  for (const SequencePattern& p : result.patterns) {
    if (p.length() < 2) continue;  // single sessions are not journeys
    std::printf("  %-55s  %.1f%%\n", render(p).c_str(), p.support * 100.0);
    if (++shown == 15) break;
  }
  return 0;
}
