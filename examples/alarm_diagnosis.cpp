// Telecommunication alarm diagnosis — the paper's second motivating domain.
//
//   $ ./alarm_diagnosis [--windows 20000] [--support 0.01] [--threads 2]
//
// Synthesizes alarm logs from a small network model (faults on backbone
// elements cascade into correlated alarms downstream, plus background
// noise), groups alarms into time-window transactions, and mines rules of
// the form {symptom alarms} => {root-cause alarm}. Also demonstrates the
// ASCII database round trip, so the mining input can be inspected or fed
// to other tools.
#include <cstdio>
#include <filesystem>

#include "core/miner.hpp"
#include "core/rules.hpp"
#include "data/db_io.hpp"
#include "itemset/itemset.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace smpmine;

namespace {

// Alarm ids: 0..9 root causes (backbone elements), 10..99 downstream
// symptoms. Each root cause deterministically implies a set of symptoms
// (its "cascade"), fired probabilistically per window.
struct Cascade {
  item_t root;
  std::vector<item_t> symptoms;
  double rate;  // probability the fault is active in a window
};

std::vector<Cascade> build_network(Rng& rng) {
  std::vector<Cascade> cascades;
  for (item_t root = 0; root < 10; ++root) {
    Cascade c;
    c.root = root;
    const std::size_t fanout = 3 + rng.uniform(4);  // 3..6 symptoms
    for (std::size_t s = 0; s < fanout; ++s) {
      c.symptoms.push_back(
          static_cast<item_t>(10 + rng.uniform(90)));
    }
    c.rate = 0.01 + 0.02 * rng.uniform01();  // 1-3% of windows
    cascades.push_back(std::move(c));
  }
  return cascades;
}

Database synthesize_log(const std::vector<Cascade>& cascades,
                        std::size_t windows, Rng& rng) {
  Database db;
  std::vector<item_t> window;
  for (std::size_t w = 0; w < windows; ++w) {
    window.clear();
    for (const Cascade& c : cascades) {
      if (rng.uniform01() >= c.rate) continue;
      window.push_back(c.root);
      for (const item_t s : c.symptoms) {
        // Symptoms fire with high but imperfect probability (lossy
        // alarm transport) — mirrors Quest's corruption rule.
        if (rng.uniform01() < 0.9) window.push_back(s);
      }
    }
    // Background noise alarms.
    const std::size_t noise = rng.uniform(4);
    for (std::size_t n = 0; n < noise; ++n) {
      window.push_back(static_cast<item_t>(10 + rng.uniform(90)));
    }
    if (!window.empty()) db.add_transaction(window);
  }
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("windows", "number of alarm time windows", "20000");
  cli.add_flag("support", "minimum support (fraction)", "0.01");
  cli.add_flag("confidence", "minimum rule confidence", "0.9");
  cli.add_flag("threads", "mining threads", "2");
  cli.add_flag("save", "write the alarm log to this ASCII file", "");
  if (!cli.parse(argc, argv)) return 1;

  Rng rng(7);
  const auto cascades = build_network(rng);
  const Database db = synthesize_log(
      cascades, static_cast<std::size_t>(cli.get_int("windows", 20'000)),
      rng);
  std::printf("synthesized %zu alarm windows, %.1f alarms/window\n",
              db.size(), db.avg_transaction_size());

  if (const std::string path = cli.get("save", ""); !path.empty()) {
    save_ascii(db, path);
    std::printf("alarm log written to %s\n", path.c_str());
  }

  MinerOptions options;
  options.min_support = cli.get_double("support", 0.01);
  options.threads = static_cast<std::uint32_t>(cli.get_int("threads", 2));
  const MiningResult result = mine(db, options);
  const auto rules = generate_rules(
      result, cli.get_double("confidence", 0.9), db.size());

  // Diagnosis view: rules whose consequent is a single root-cause alarm.
  std::puts("\nroot-cause diagnosis rules (symptoms => backbone fault):");
  std::size_t shown = 0;
  for (const Rule& r : rules) {
    if (r.consequent.size() != 1 || r.consequent[0] >= 10) continue;
    bool symptoms_only = true;
    for (const item_t a : r.antecedent) symptoms_only &= a >= 10;
    if (!symptoms_only || r.antecedent.size() < 2) continue;
    std::printf("  alarms %s => fault on element %u  (conf %.2f, seen %u "
                "times)\n",
                format_itemset(r.antecedent).c_str(), r.consequent[0],
                r.confidence, r.support_count);
    if (++shown == 12) break;
  }
  if (shown == 0) {
    std::puts("  (none above threshold — lower --support or --confidence)");
  }
  std::printf("\n%zu total rules; mining took %.3fs over %zu iterations\n",
              rules.size(), result.total_seconds, result.iterations.size());
  return 0;
}
