// Quickstart: mine association rules from a tiny hand-written basket
// database — the paper's own worked example (Section 2.1.3).
//
//   $ ./quickstart
//
// Walks the full pipeline: build a Database, mine frequent itemsets with
// the sequential miner, and generate rules with confidence and lift.
#include <cstdio>

#include "core/miner.hpp"
#include "core/rules.hpp"
#include "itemset/itemset.hpp"

using namespace smpmine;

int main() {
  // Four shopping baskets over items {1..5}.
  Database db;
  db.add_transaction(std::vector<item_t>{1, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2});
  db.add_transaction(std::vector<item_t>{3, 4, 5});
  db.add_transaction(std::vector<item_t>{1, 2, 4, 5});

  MinerOptions options;
  options.min_support = 0.5;     // an itemset must appear in half the baskets
  options.min_confidence = 0.7;  // rule strength threshold

  const MiningResult result = mine_sequential(db, options);

  std::puts("frequent itemsets (support count):");
  for (const FrequentSet& level : result.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      std::printf("  %s  x%u\n", format_itemset(level.itemset(i)).c_str(),
                  level.count(i));
    }
  }

  std::puts("\nassociation rules:");
  for (const Rule& rule :
       generate_rules(result, options.min_confidence, db.size())) {
    std::printf("  %s\n", rule.to_string().c_str());
  }

  std::printf("\nmined %llu itemsets over %zu iterations in %.4fs\n",
              static_cast<unsigned long long>(result.total_frequent()),
              result.iterations.size(), result.total_seconds);
  return 0;
}
