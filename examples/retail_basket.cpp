// Retail basket analysis — the paper's motivating scenario.
//
//   $ ./retail_basket [--customers 50000] [--support 0.005] [--threads 4]
//
// Generates a synthetic retail workload with the Quest generator (the same
// process behind the paper's benchmark databases), mines it in parallel
// with CCPD, and prints the strongest rules plus a per-iteration mining
// profile — what a merchandising analyst would actually look at.
#include <cstdio>

#include "core/miner.hpp"
#include "core/rules.hpp"
#include "data/quest_gen.hpp"
#include "itemset/itemset.hpp"
#include "util/cli.hpp"

using namespace smpmine;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("customers", "number of baskets to generate", "50000");
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  cli.add_flag("confidence", "minimum rule confidence", "0.8");
  cli.add_flag("threads", "mining threads", "4");
  cli.add_flag("top", "rules to print", "15");
  if (!cli.parse(argc, argv)) return 1;

  QuestParams gen;
  gen.num_transactions =
      static_cast<std::uint32_t>(cli.get_int("customers", 50'000));
  gen.avg_transaction_len = 10;  // items per basket
  gen.avg_pattern_len = 4;       // co-purchase pattern size
  gen.num_items = 1000;          // catalogue size (paper's N)
  gen.num_patterns = 2000;       // latent co-purchase patterns (paper's L)
  gen.seed = 42;

  std::printf("generating %s (%u baskets over %u products)...\n",
              gen.name().c_str(), gen.num_transactions, gen.num_items);
  const Database db = generate_quest(gen);

  MinerOptions options;
  options.min_support = cli.get_double("support", 0.005);
  options.min_confidence = cli.get_double("confidence", 0.8);
  options.threads = static_cast<std::uint32_t>(cli.get_int("threads", 4));
  options.placement = PlacementPolicy::LcaGpp;  // the paper's best scheme

  std::printf("mining at %.2f%% support on %u threads (%s placement)...\n",
              options.min_support * 100.0, options.threads,
              to_string(options.placement).c_str());
  const MiningResult result = mine(db, options);
  std::fputs(result.report().c_str(), stdout);

  const auto rules =
      generate_rules(result, options.min_confidence, db.size());
  const auto top = static_cast<std::size_t>(cli.get_int("top", 15));
  std::printf("\n%zu rules at confidence >= %.0f%%; top %zu by confidence:\n",
              rules.size(), options.min_confidence * 100.0,
              std::min(top, rules.size()));
  for (std::size_t i = 0; i < rules.size() && i < top; ++i) {
    std::printf("  %2zu. %s\n", i + 1, rules[i].to_string().c_str());
  }
  if (!rules.empty()) {
    std::puts("\nreading: customers who buy the left-hand products also buy "
              "the right-hand ones; lift > 1 means the association beats "
              "chance.");
  }
  return 0;
}
