// Figure 9: effect of short-circuited subset checking (0.5% support).
//
// Baseline: LeafVisited (only leaves are deduped per transaction; duplicate
// hash paths re-descend). Optimized: FrameLocal (the paper's reduced-memory
// VISITED mechanism). The paper reports % improvement per dataset and
// processor count, largest for long-transaction datasets (T20).
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

namespace {

MinerOptions config(std::uint32_t threads, SubsetCheck check) {
  MinerOptions opts;
  opts.min_support = 0.005;
  opts.threads = threads;
  opts.subset_check = check;
  // This figure studies the pointer-walk subset checks; the flat kernel
  // always dedups frame-locally, which would erase the contrast.
  opts.count_kernel = CountKernel::Pointer;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(
      cli, {"T5.I2.D100K", "T10.I6.D800K", "T15.I4.D100K", "T20.I6.D100K"});

  print_header("Figure 9: short-circuited subset checking",
               "Fig. 9 (% improvement vs unoptimized, 0.5% support, "
               "P = 1,2,4,8)",
               env);

  TextTable table({"Database", "P", "base_s", "improvement %",
                   "internal visits saved %"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    for (const std::uint32_t threads : env.thread_counts) {
      const MiningResult base =
          run_miner(db, config(threads, SubsetCheck::LeafVisited), env);
      const MiningResult sc =
          run_miner(db, config(threads, SubsetCheck::FrameLocal), env);
      const double base_t = base.modeled_total_seconds();
      const double visits_saved = pct_improvement(
          static_cast<double>(base.traversal_work()),
          static_cast<double>(sc.traversal_work()));
      table.add_row({scaled_name(name, env), std::to_string(threads),
                     TextTable::num(base_t, 3),
                     TextTable::num(pct_improvement(
                         base_t, sc.modeled_total_seconds()), 1),
                     TextTable::num(visits_saved, 1)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: modest gains for small "
            "transactions (T5), up to ~25% for large ones (T20) — the "
            "larger the transaction, the more duplicate hash paths there "
            "are to preempt.");
  return 0;
}
