// Ablation: database partitioning (Section 3.2.2).
//
// The paper block-partitions the database and notes the workload is
// polynomial in transaction length, so variable-length transactions leave
// a static block split imbalanced; it proposes the mean-workload heuristic.
// This bench compares Block vs Balanced cuts on counting-phase balance.
#include <cstdio>

#include "bench_common.hpp"
#include "data/db_partition.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env =
      parse_env(cli, {"T10.I4.D100K", "T20.I6.D100K"}, {4, 8});
  const double support = cli.get_double("support", 0.005);

  print_header("Ablation: database partitioning",
               "Section 3.2.2 (block vs estimated-workload balanced cuts)",
               env);

  TextTable table({"Database", "P", "partition", "est. imbalance",
                   "count busy max/mean", "modeled_s"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    for (const std::uint32_t threads : env.thread_counts) {
      for (const DbPartition how : {DbPartition::Block, DbPartition::Balanced}) {
        MinerOptions opts;
        opts.min_support = support;
        opts.threads = threads;
        opts.db_partition = how;
        const MiningResult r = run_miner(db, opts);
        const double est = ranges_imbalance(
            db, partition_database(db, threads, how));
        double busy_sum = 0.0, busy_max = 0.0;
        for (const auto& it : r.iterations) {
          busy_sum += it.count_busy_sum;
          busy_max += it.count_busy_max;
        }
        const double mean = busy_sum / threads;
        table.add_row({scaled_name(name, env), std::to_string(threads),
                       to_string(how), TextTable::num(est, 3),
                       TextTable::num(mean > 0 ? busy_max / mean : 1.0, 3),
                       TextTable::num(r.modeled_total_seconds(), 3)});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpect: the balanced cut's estimated imbalance is ~1.0 and "
            "its measured counting balance no worse than block's; gains "
            "grow with transaction-length variance.");
  return 0;
}
