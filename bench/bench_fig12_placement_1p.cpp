// Figure 12: memory placement policies, one processor.
//
// The paper normalizes uniprocessor execution time of SPP / LPP / GPP to
// the malloc-based CCPD baseline, at 0.5% and 0.1% support: SPP alone is
// worth 40-55%, GPP wins on the larger datasets / lower supports where
// counting dominates and the remap cost amortizes.
//
// Besides wall time (meaningful single-threaded), the bench reports the
// deterministic locality proxies of the counting-order address trace —
// same-cache-line rate and mean stride — which show the mechanism even
// when the host's wall clock is noisy.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

namespace {

constexpr PlacementPolicy kPolicies[] = {
    PlacementPolicy::Malloc, PlacementPolicy::SPP, PlacementPolicy::LPP,
    PlacementPolicy::GPP};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("supports", "comma-separated support fractions", "0.005,0.001");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(
      cli, {"T5.I2.D100K", "T10.I4.D100K", "T10.I6.D400K", "T10.I6.D800K"},
      {1});
  std::vector<double> supports;
  {
    std::string csv = cli.get("supports", "0.005,0.001");
    std::size_t pos = 0;
    while (pos < csv.size()) {
      std::size_t next = csv.find(',', pos);
      if (next == std::string::npos) next = csv.size();
      supports.push_back(std::stod(csv.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  print_header("Figure 12: placement policies, one processor",
               "Fig. 12 (normalized execution time of SPP/LPP/GPP vs CCPD, "
               "P=1, 0.5% and 0.1% support)",
               env);

  TextTable table({"Database", "supp%", "policy", "wall_s", "normalized",
                   "same-line rate", "mean stride B", "remap_s"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    for (const double support : supports) {
      double base_wall = 0.0;
      for (const PlacementPolicy policy : kPolicies) {
        MinerOptions opts;
        opts.min_support = support;
        opts.placement = policy;
        opts.collect_locality = true;
        // Placement study walks the pointer tree; the frozen kernel reads
        // its own contiguous arrays and would mask block placement.
        opts.count_kernel = CountKernel::Pointer;
        const MiningResult r = run_miner(db, opts, env);
        if (policy == PlacementPolicy::Malloc) base_wall = r.total_seconds;

        // Aggregate locality over iterations, weighted by trace size.
        double same_line = 0.0, stride = 0.0, weight = 0.0;
        for (const auto& it : r.iterations) {
          const auto w = static_cast<double>(it.locality_distinct_lines);
          same_line += it.locality_same_line_rate * w;
          stride += it.locality_mean_stride * w;
          weight += w;
        }
        if (weight > 0) {
          same_line /= weight;
          stride /= weight;
        }
        table.add_row(
            {scaled_name(name, env), TextTable::num(support * 100, 2),
             to_string(policy), TextTable::num(r.total_seconds, 3),
             TextTable::num(base_wall > 0 ? r.total_seconds / base_wall : 1.0,
                            3),
             TextTable::num(same_line, 3), TextTable::num(stride, 0),
             TextTable::num(r.phase_total(&IterationStats::remap_seconds), 3)});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: SPP well under 1.0 "
            "(contiguous placement), GPP best on the larger datasets where "
            "counting dominates; the same-line rate and stride columns show "
            "why (tighter traces under region placement and DFS remap).");
  return 0;
}
