// Figure 11: CCPD parallel speed-up (0.5% support, all optimizations on).
//
// The paper measures wall-clock speedup on a 12-CPU SGI Challenge, reaching
// ~8 on 12 processors for T10.I6.D1600K. This container has one core, so
// wall-clock cannot reproduce the curve; the bench therefore reports
//   - wall time (for the record),
//   - work-model speedup: modeled parallel computation time at P=1 divided
//     by modeled time at P (per-iteration critical path of per-thread CPU
//     time + serial phases) — the machine-independent balance result, and
//   - counting-phase balance (per-thread CPU sum / max), the upper bound
//     on counting speedup that load imbalance allows.
//
// PR 10 adds the speedup autopsy: each (dataset, P) row carries the
// efficiency ledger's loss decomposition (serial fraction, imbalance,
// contention, residual overhead — see obs/ledger/efficiency.hpp), and the
// whole sweep goes to --out as a smpmine.bench.v1 artifact so
// scripts/bench_compare.py can gate imbalance_pct / serial_fraction in CI
// and scripts/efficiency_report.py can line the losses up against the
// measured curve.
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "obs/json_writer.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  cli.add_flag("out", "smpmine.bench.v1 JSON artifact path (empty = none)",
               "");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(
      cli,
      {"T5.I2.D100K", "T10.I4.D100K", "T10.I6.D400K", "T10.I6.D800K"},
      {1, 2, 4, 8, 12});
  const double support = cli.get_double("support", 0.005);
  const std::string out_path = cli.get("out", "");

  print_header("Figure 11: CCPD parallel speed-up",
               "Fig. 11 (speedup vs P, 0.5% support, all optimizations)",
               env);

  std::ofstream os;
  obs::JsonWriter w(os);
  if (!out_path.empty()) {
    os.open(out_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    w.begin_object();
    w.kv("schema", "smpmine.bench.v1");
    w.kv("bench", "fig11_speedup");
    w.kv("scale", env.scale);
    w.kv("support", support);
    w.key("runs").begin_array();
  }

  TextTable table({"Database", "P", "wall_s", "modeled_s", "speedup",
                   "balance", "serial%", "imbal%", "cont%", "ovhd%"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    double modeled_p1 = 0.0;
    for (const std::uint32_t threads : env.thread_counts) {
      MinerOptions opts;
      opts.min_support = support;
      opts.threads = threads;
      const MiningResult r = run_miner(db, opts, env);
      const double modeled = r.modeled_total_seconds();
      if (threads == env.thread_counts.front()) modeled_p1 = modeled;
      const double speedup = modeled > 0 ? modeled_p1 / modeled : 1.0;
      const auto& eff = r.run_efficiency;
      table.add_row({scaled_name(name, env), std::to_string(threads),
                     TextTable::num(r.total_seconds, 2),
                     TextTable::num(modeled, 3),
                     TextTable::num(speedup, 2),
                     TextTable::num(r.work_speedup(), 2),
                     TextTable::num(eff.serial_loss * 100.0, 1),
                     TextTable::num(eff.imbalance_loss * 100.0, 1),
                     TextTable::num(eff.contention_loss * 100.0, 1),
                     TextTable::num(eff.overhead_loss * 100.0, 1)});
      if (!out_path.empty()) {
        w.begin_object();
        w.kv("dataset", scaled_name(name, env));
        w.kv("threads", threads);
        w.kv("wall_seconds", r.total_seconds);
        w.kv("modeled_seconds", modeled);
        w.kv("speedup", speedup);
        w.kv("efficiency_pct",
             threads > 0 ? speedup / threads * 100.0 : 100.0);
        w.kv("work_speedup", r.work_speedup());
        // Loss decomposition over the run's thread-seconds budget; the
        // five fractions sum to 1 by construction.
        w.kv("serial_fraction", eff.serial_fraction);
        w.kv("work_pct", eff.work_fraction * 100.0);
        w.kv("serial_pct", eff.serial_loss * 100.0);
        w.kv("imbalance_pct", eff.imbalance_loss * 100.0);
        w.kv("contention_pct", eff.contention_loss * 100.0);
        w.kv("overhead_pct", eff.overhead_loss * 100.0);
        w.end_object();
      }
    }
  }
  if (!out_path.empty()) {
    w.end_array();
    w.end_object();
    os << '\n';
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: speedup grows with P and "
            "with dataset size (more counting work to amortize the serial "
            "phases); the largest dataset gets closest to ideal. Paper "
            "reference points: ~2 on 4 procs for T5.I2, ~8 on 12 procs for "
            "T10.I6.D1600K (I/O-bound ceilings included there). The loss "
            "columns are the autopsy: on an oversubscribed host the "
            "shortfall shows up as ovhd%, on a real SMP as imbal%/serial%.");
  return 0;
}
