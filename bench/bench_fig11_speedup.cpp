// Figure 11: CCPD parallel speed-up (0.5% support, all optimizations on).
//
// The paper measures wall-clock speedup on a 12-CPU SGI Challenge, reaching
// ~8 on 12 processors for T10.I6.D1600K. This container has one core, so
// wall-clock cannot reproduce the curve; the bench therefore reports
//   - wall time (for the record),
//   - work-model speedup: modeled parallel computation time at P=1 divided
//     by modeled time at P (per-iteration critical path of per-thread CPU
//     time + serial phases) — the machine-independent balance result, and
//   - counting-phase balance (per-thread CPU sum / max), the upper bound
//     on counting speedup that load imbalance allows.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(
      cli,
      {"T5.I2.D100K", "T10.I4.D100K", "T10.I6.D400K", "T10.I6.D800K"},
      {1, 2, 4, 8, 12});
  const double support = cli.get_double("support", 0.005);

  print_header("Figure 11: CCPD parallel speed-up",
               "Fig. 11 (speedup vs P, 0.5% support, all optimizations)",
               env);

  TextTable table({"Database", "P", "wall_s", "modeled_s",
                   "work-model speedup", "count balance (sum/max)"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    double modeled_p1 = 0.0;
    for (const std::uint32_t threads : env.thread_counts) {
      MinerOptions opts;
      opts.min_support = support;
      opts.threads = threads;
      const MiningResult r = run_miner(db, opts, env);
      const double modeled = r.modeled_total_seconds();
      if (threads == env.thread_counts.front()) modeled_p1 = modeled;
      table.add_row({scaled_name(name, env), std::to_string(threads),
                     TextTable::num(r.total_seconds, 2),
                     TextTable::num(modeled, 3),
                     TextTable::num(modeled > 0 ? modeled_p1 / modeled : 1.0, 2),
                     TextTable::num(r.work_speedup(), 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: speedup grows with P and "
            "with dataset size (more counting work to amortize the serial "
            "phases); the largest dataset gets closest to ideal. Paper "
            "reference points: ~2 on 4 procs for T5.I2, ~8 on 12 procs for "
            "T10.I6.D1600K (I/O-bound ceilings included there).");
  return 0;
}
