// Figure 13: memory placement policies on multiple processors.
//
// All seven policies (CCPD, SPP, L-SPP, L-LPP, GPP, L-GPP, LCA-GPP) at
// P in {4, 8} and supports 0.5% / 0.1%, normalized to CCPD. On this
// single-core host the multiprocessor cache-coherence effects (false
// sharing, invalidation traffic) do not appear in wall time, so alongside
// the modeled computation time the bench reports the *mechanism* metrics:
//   - counter/itemset cache-line sharing (the false-sharing hazard;
//     0 under the L-* and LCA policies),
//   - counting-trace same-line rate and stride (locality), and
//   - LCA's reduction cost (the price it pays for zero synchronization).
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("supports", "comma-separated support fractions", "0.005,0.001");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(
      cli, {"T5.I2.D100K", "T10.I4.D100K", "T10.I6.D800K"}, {4, 8});
  std::vector<double> supports;
  {
    std::string csv = cli.get("supports", "0.005,0.001");
    std::size_t pos = 0;
    while (pos < csv.size()) {
      std::size_t next = csv.find(',', pos);
      if (next == std::string::npos) next = csv.size();
      supports.push_back(std::stod(csv.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  print_header(
      "Figure 13: placement policies, multiple processors",
      "Fig. 13 (normalized execution time, 7 policies, P=4 and 8, both "
      "supports)",
      env);

  TextTable table({"Database", "supp%", "P", "policy", "modeled_s",
                   "normalized", "ctr/itemset line sharing", "same-line rate",
                   "reduce_s"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    for (const double support : supports) {
      for (const std::uint32_t threads : env.thread_counts) {
        double base_time = 0.0;
        for (const PlacementPolicy policy : kAllPolicies) {
          MinerOptions opts;
          opts.min_support = support;
          opts.threads = threads;
          opts.placement = policy;
          opts.collect_locality = true;
          // Placement study walks the pointer tree; the frozen kernel reads
          // its own contiguous arrays and would mask block placement.
          opts.count_kernel = CountKernel::Pointer;
          const MiningResult r = run_miner(db, opts, env);
          const double modeled = r.modeled_total_seconds();
          if (policy == PlacementPolicy::Malloc) base_time = modeled;

          double same_line = 0.0, sharing = 0.0, weight = 0.0;
          for (const auto& it : r.iterations) {
            const auto w = static_cast<double>(it.candidates);
            same_line += it.locality_same_line_rate * w;
            sharing += it.counter_itemset_line_sharing * w;
            weight += w;
          }
          if (weight > 0) {
            same_line /= weight;
            sharing /= weight;
          }
          table.add_row(
              {scaled_name(name, env), TextTable::num(support * 100, 2),
               std::to_string(threads), to_string(policy),
               TextTable::num(modeled, 3),
               TextTable::num(base_time > 0 ? modeled / base_time : 1.0, 3),
               TextTable::pct(sharing, 0), TextTable::num(same_line, 3),
               TextTable::num(r.phase_total(&IterationStats::reduce_seconds),
                              4)});
        }
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: every region policy beats "
            "CCPD; the L-* policies zero the counter/itemset line sharing "
            "at a small locality cost; LCA-GPP eliminates synchronization "
            "entirely and pays a visible reduce_s. On a multi-core host the "
            "sharing column translates into the paper's false-sharing "
            "slowdowns.");
  return 0;
}
