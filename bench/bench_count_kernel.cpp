// Counting-kernel comparison: pointer walk vs frozen flat CSR vs vertical
// tid-bitmaps, plus the Auto chooser.
//
// Not a paper figure — this measures the PR's counting-kernel work. All
// kernels mine the same dataset end-to-end; the reported metric is the
// counting cost per transaction-iteration, where each kernel is charged
// for its own build phase (freeze for the frozen kernels, bitmap
// construction for the vertical path — overhead the pointer walk does not
// pay, so it must be earned back):
//
//   ns/txn = sum_k(freeze_s + vertbuild_s + count_s)
//            / (iterations_counted * |D|)
//
// taken as the median over --repeat runs. Two workloads run by default:
// the Table-2 T10.I4.D100K (horizontal-friendly: many wide candidates)
// and a synthetic "deep" workload (small universe, long patterns, high
// support) whose late iterations have few deep candidates — the regime
// the vertical kernel exists for. The flat run is additionally re-measured
// with the SIMD backend forced to scalar, giving simd_speedup_vs_scalar.
//
// Results go to stdout as a table and to --out as BENCH_counting.json
// (schema smpmine.bench.v1), which scripts/bench_compare.py validates and
// gates on (see the kernel-filtered --spec syntax there).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/flight/flight_recorder.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger/telemetry.hpp"
#include "util/cpu_features.hpp"

using namespace smpmine;
using namespace smpmine::bench;

namespace {

struct KernelRun {
  double median_ns_per_txn = 0.0;
  double median_counting_seconds = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t iterations = 0;
  std::uint32_t tile_size = 0;
  /// Distinct IterationStats::count_kernel_used values, "+"-joined — for
  /// fixed kernels a single name, for Auto the per-iteration choices.
  std::string kernels_used;
};

/// A bench workload: a dataset plus the support threshold that shapes its
/// candidate structure.
struct Workload {
  std::string label;
  Database db;
  double min_support = 0.005;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Counting seconds for one run: count phase plus the kernel's own build
/// cost (freeze for flat, freeze + bitmap build for vertical).
double counting_seconds(const MiningResult& r) {
  double s = 0.0;
  for (const IterationStats& it : r.iterations) {
    s += it.freeze_seconds + it.vertbuild_seconds + it.count_seconds;
  }
  return s;
}

KernelRun measure(const Workload& w, const BenchEnv& env, CountKernel kernel,
                  std::uint32_t threads) {
  MinerOptions opts;
  opts.min_support = w.min_support;
  opts.threads = threads;
  opts.count_kernel = kernel;

  std::vector<double> seconds;
  KernelRun run;
  for (std::uint32_t r = 0; r < env.repeat; ++r) {
    const MiningResult res = mine(w.db, opts);
    seconds.push_back(counting_seconds(res));
    if (r == 0) {
      std::set<std::string> used;
      for (const IterationStats& it : res.iterations) {
        if (it.candidates == 0) continue;
        run.hits += it.hits;
        ++run.iterations;
        run.tile_size = std::max(run.tile_size, it.count_tile_size);
        used.insert(it.count_kernel_used);
      }
      for (const std::string& u : used) {
        if (!run.kernels_used.empty()) run.kernels_used += '+';
        run.kernels_used += u;
      }
    }
  }
  run.median_counting_seconds = median(std::move(seconds));
  const double txn_iters =
      static_cast<double>(run.iterations) * static_cast<double>(w.db.size());
  run.median_ns_per_txn =
      txn_iters > 0 ? run.median_counting_seconds * 1e9 / txn_iters : 0.0;
  return run;
}

/// The vertical kernel's home turf: a small universe with long embedded
/// patterns and a support threshold that kills random pairs by k=3 —
/// the surviving deep candidates are few, so AND+popcount over tid
/// bitmaps beats re-scanning every transaction. |D| scales with --scale
/// like the Table-2 sets.
Workload make_deep_workload(const BenchEnv& env) {
  QuestParams p;
  p.num_transactions =
      static_cast<std::uint32_t>(50000 * env.scale + 0.5);
  p.avg_transaction_len = 12.0;
  p.avg_pattern_len = 6.0;
  p.num_patterns = 10;
  p.num_items = 30;
  p.seed = env.seed;
  std::fprintf(stderr, "generating deep workload (%u txns)...\n",
               p.num_transactions);
  return {"deep", generate_quest(p), 0.1};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("out", "JSON artifact path", "BENCH_counting.json");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, {"T10.I4.D100K"}, {1});
  const std::string out_path = cli.get("out", "BENCH_counting.json");

  print_header("Counting kernel: pointer vs flat CSR vs vertical bitmaps",
               "(not a paper figure; build phases charged per kernel)",
               env);

  std::vector<Workload> workloads;
  for (const std::string& name : env.datasets) {
    workloads.push_back(
        {scaled_name(name, env), make_dataset(name, env), 0.005});
  }
  workloads.push_back(make_deep_workload(env));

  TextTable table({"Workload", "P", "kernel", "count ns/txn", "hits",
                   "used", "vs ptr", "vs flat"});

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "smpmine.bench.v1");
  w.kv("bench", "count_kernel");
  w.kv("scale", env.scale);
  w.kv("simd_backend", to_string(simd_backend()));
  w.key("runs").begin_array();

  constexpr CountKernel kKernels[4] = {CountKernel::Pointer,
                                       CountKernel::Flat,
                                       CountKernel::Vertical,
                                       CountKernel::Auto};
  constexpr const char* kNames[4] = {"pointer", "flat", "vertical", "auto"};

  for (const Workload& wl : workloads) {
    for (const std::uint32_t threads : env.thread_counts) {
      KernelRun runs[4];
      for (int i = 0; i < 4; ++i) {
        runs[i] = measure(wl, env, kKernels[i], threads);
      }
      const KernelRun& pointer = runs[0];
      const KernelRun& flat = runs[1];

      // SIMD ablation: the same flat mining run with the tile backend
      // pinned to scalar. The ratio isolates the vectorized containment
      // loop (freeze and drive logic are identical on both sides).
      const SimdBackend active = simd_backend();
      set_simd_backend(SimdBackend::Scalar);
      const KernelRun flat_scalar =
          measure(wl, env, CountKernel::Flat, threads);
      set_simd_backend(active);
      const double simd_speedup =
          flat.median_counting_seconds > 0
              ? flat_scalar.median_counting_seconds /
                    flat.median_counting_seconds
              : 0.0;

      // Auto's promise: never meaningfully worse than the best fixed
      // kernel. >1 means auto beat every fixed choice.
      double best_fixed = runs[0].median_counting_seconds;
      for (int i = 1; i < 3; ++i) {
        best_fixed = std::min(best_fixed, runs[i].median_counting_seconds);
      }

      for (int i = 0; i < 4; ++i) {
        const double vs_ptr =
            runs[i].median_ns_per_txn > 0
                ? pointer.median_ns_per_txn / runs[i].median_ns_per_txn
                : 0.0;
        const double vs_flat =
            runs[i].median_ns_per_txn > 0
                ? flat.median_ns_per_txn / runs[i].median_ns_per_txn
                : 0.0;
        const double vs_best_fixed =
            kKernels[i] == CountKernel::Auto &&
                    runs[i].median_counting_seconds > 0
                ? best_fixed / runs[i].median_counting_seconds
                : 1.0;
        table.add_row({wl.label, std::to_string(threads), kNames[i],
                       TextTable::num(runs[i].median_ns_per_txn, 1),
                       std::to_string(runs[i].hits), runs[i].kernels_used,
                       TextTable::num(vs_ptr, 2),
                       TextTable::num(vs_flat, 2)});
        w.begin_object();
        w.kv("dataset", wl.label);
        w.kv("threads", threads);
        w.kv("kernel", kNames[i]);
        w.kv("kernels_used", runs[i].kernels_used);
        w.kv("median_ns_per_transaction", runs[i].median_ns_per_txn);
        w.kv("median_counting_seconds", runs[i].median_counting_seconds);
        w.kv("hits", runs[i].hits);
        w.kv("iterations", runs[i].iterations);
        w.kv("tile_size", runs[i].tile_size);
        w.kv("speedup_vs_pointer", vs_ptr);
        w.kv("speedup_vs_flat", vs_flat);
        w.kv("simd_speedup_vs_scalar",
             kKernels[i] == CountKernel::Flat ? simd_speedup : 1.0);
        w.kv("auto_vs_best_fixed", vs_best_fixed);
        w.end_object();
      }
      std::printf("%s P=%u: simd flat speedup vs scalar %.2fx, "
                  "auto vs best fixed %.2fx\n",
                  wl.label.c_str(), threads, simd_speedup,
                  best_fixed / std::max(1e-12,
                                        runs[3].median_counting_seconds));
    }
  }

  w.end_array();

  // Flight-recorder overhead check (acceptance budget: < 2% wall time on
  // this bench). Same flat-kernel mining run with recording on vs off,
  // interleaved off/on per repeat so clock drift (frequency scaling, a
  // neighbour waking up) hits both sides alike instead of biasing
  // whichever block ran second; min-of-repeat each so scheduler noise
  // shrinks rather than inflates the delta. The first workload and last
  // thread count are reused.
  double flight_overhead_pct = 0.0;
  if (!workloads.empty() && !env.thread_counts.empty()) {
    const Workload& wl = workloads.front();
    const std::uint32_t threads = env.thread_counts.back();
    const bool was_enabled = obs::flight::enabled();
    double off_s = 0.0;
    double on_s = 0.0;
    for (std::uint32_t r = 0; r < env.repeat; ++r) {
      for (const bool flight_on : {false, true}) {
        obs::flight::set_enabled(flight_on);
        const KernelRun run = measure(wl, env, CountKernel::Flat, threads);
        double& best = flight_on ? on_s : off_s;
        if (r == 0 || run.median_counting_seconds < best) {
          best = run.median_counting_seconds;
        }
      }
    }
    obs::flight::set_enabled(was_enabled);
    flight_overhead_pct =
        off_s > 0.0 ? (on_s - off_s) / off_s * 100.0 : 0.0;
    std::printf(
        "flight recorder overhead: %.2f%% counting wall time "
        "(on %.4fs vs off %.4fs, budget < 2%%)\n",
        flight_overhead_pct, on_s, off_s);
  }
  w.kv("flight_overhead_pct", flight_overhead_pct);

  // Telemetry-sampler overhead check (acceptance budget: < 2% wall time on
  // this bench) — same interleaved on/off, min-of-repeat method as the
  // flight block above, with the sampler streaming at a 10ms period (an
  // order of magnitude hotter than the documented 100ms default, so the
  // budget holds with margin).
  double telemetry_overhead_pct = 0.0;
  if (!workloads.empty() && !env.thread_counts.empty()) {
    const Workload& wl = workloads.front();
    const std::uint32_t threads = env.thread_counts.back();
    const std::string telemetry_path = out_path + ".telemetry.jsonl";
    double off_s = 0.0;
    double on_s = 0.0;
    for (std::uint32_t r = 0; r < env.repeat; ++r) {
      for (const bool telemetry_on : {false, true}) {
        if (telemetry_on) {
          obs::ledger::TelemetryOptions topts;
          topts.period_ms = 10;
          topts.path = telemetry_path;
          obs::ledger::start(topts);
        }
        const KernelRun run = measure(wl, env, CountKernel::Flat, threads);
        if (telemetry_on) obs::ledger::stop();
        double& best = telemetry_on ? on_s : off_s;
        if (r == 0 || run.median_counting_seconds < best) {
          best = run.median_counting_seconds;
        }
      }
    }
    telemetry_overhead_pct =
        off_s > 0.0 ? (on_s - off_s) / off_s * 100.0 : 0.0;
    std::printf(
        "telemetry sampler overhead: %.2f%% counting wall time "
        "(on %.4fs vs off %.4fs at 10ms period, budget < 2%%; "
        "stream: %s)\n",
        telemetry_overhead_pct, on_s, off_s, telemetry_path.c_str());
  }
  w.kv("telemetry_overhead_pct", telemetry_overhead_pct);

  w.end_object();
  os << '\n';
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
