// Counting-kernel comparison: frozen flat CSR kernel vs the pointer walk.
//
// Not a paper figure — this measures the PR's frozen-tree optimization.
// Both kernels mine the same dataset end-to-end; the reported metric is
// the counting cost per transaction-iteration, where the flat kernel is
// charged for its freeze phase too (the freeze is overhead the pointer
// walk does not pay, so it must earn it back):
//
//   ns/txn = sum_k(freeze_s + count_s) / (iterations_counted * |D|)
//
// taken as the median over --repeat runs. Results go to stdout as a table
// and to --out as BENCH_counting.json (schema smpmine.bench.v1), which
// scripts/bench_compare.py validates and gates on.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/flight/flight_recorder.hpp"
#include "obs/json_writer.hpp"

using namespace smpmine;
using namespace smpmine::bench;

namespace {

struct KernelRun {
  double median_ns_per_txn = 0.0;
  double median_counting_seconds = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t iterations = 0;
  std::uint32_t tile_size = 0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Counting seconds for one run: count phase plus (for the flat kernel)
/// the freeze that produced the structure being counted.
double counting_seconds(const MiningResult& r) {
  double s = 0.0;
  for (const IterationStats& it : r.iterations) {
    s += it.freeze_seconds + it.count_seconds;
  }
  return s;
}

KernelRun measure(const Database& db, const BenchEnv& env,
                  CountKernel kernel, std::uint32_t threads) {
  MinerOptions opts;
  opts.min_support = 0.005;
  opts.threads = threads;
  opts.count_kernel = kernel;

  std::vector<double> seconds;
  KernelRun run;
  for (std::uint32_t r = 0; r < env.repeat; ++r) {
    const MiningResult res = mine(db, opts);
    seconds.push_back(counting_seconds(res));
    if (r == 0) {
      for (const IterationStats& it : res.iterations) {
        if (it.candidates == 0) continue;
        run.hits += it.hits;
        ++run.iterations;
        run.tile_size = std::max(run.tile_size, it.count_tile_size);
      }
    }
  }
  run.median_counting_seconds = median(std::move(seconds));
  const double txn_iters =
      static_cast<double>(run.iterations) * static_cast<double>(db.size());
  run.median_ns_per_txn =
      txn_iters > 0 ? run.median_counting_seconds * 1e9 / txn_iters : 0.0;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("out", "JSON artifact path", "BENCH_counting.json");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, {"T10.I4.D100K"}, {1});
  const std::string out_path = cli.get("out", "BENCH_counting.json");

  print_header("Counting kernel: frozen flat CSR vs pointer walk",
               "(not a paper figure; freeze time charged to flat)", env);

  TextTable table({"Database", "P", "kernel", "count ns/txn", "hits",
                   "tile", "speedup"});

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "smpmine.bench.v1");
  w.kv("bench", "count_kernel");
  w.kv("scale", env.scale);
  w.key("runs").begin_array();

  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    for (const std::uint32_t threads : env.thread_counts) {
      const KernelRun pointer =
          measure(db, env, CountKernel::Pointer, threads);
      const KernelRun flat = measure(db, env, CountKernel::Flat, threads);
      const double speedup =
          flat.median_ns_per_txn > 0
              ? pointer.median_ns_per_txn / flat.median_ns_per_txn
              : 0.0;

      const std::string label = scaled_name(name, env);
      const KernelRun* runs[2] = {&pointer, &flat};
      const char* names[2] = {"pointer", "flat"};
      for (int i = 0; i < 2; ++i) {
        table.add_row({label, std::to_string(threads), names[i],
                       TextTable::num(runs[i]->median_ns_per_txn, 1),
                       std::to_string(runs[i]->hits),
                       std::to_string(runs[i]->tile_size),
                       i == 0 ? "1.00" : TextTable::num(speedup, 2)});
        w.begin_object();
        w.kv("dataset", label);
        w.kv("threads", threads);
        w.kv("kernel", names[i]);
        w.kv("median_ns_per_transaction", runs[i]->median_ns_per_txn);
        w.kv("median_counting_seconds", runs[i]->median_counting_seconds);
        w.kv("hits", runs[i]->hits);
        w.kv("iterations", runs[i]->iterations);
        w.kv("tile_size", runs[i]->tile_size);
        w.kv("speedup_vs_pointer", i == 0 ? 1.0 : speedup);
        w.end_object();
      }
    }
  }

  w.end_array();

  // Flight-recorder overhead check (acceptance budget: < 2% wall time on
  // this bench). Same flat-kernel mining run with recording on vs off,
  // interleaved off/on per repeat so clock drift (frequency scaling, a
  // neighbour waking up) hits both sides alike instead of biasing
  // whichever block ran second; min-of-repeat each so scheduler noise
  // shrinks rather than inflates the delta. The last dataset/thread-count
  // combination is reused.
  double flight_overhead_pct = 0.0;
  if (!env.datasets.empty() && !env.thread_counts.empty()) {
    const Database db = make_dataset(env.datasets.back(), env);
    const std::uint32_t threads = env.thread_counts.back();
    const bool was_enabled = obs::flight::enabled();
    double off_s = 0.0;
    double on_s = 0.0;
    for (std::uint32_t r = 0; r < env.repeat; ++r) {
      for (const bool flight_on : {false, true}) {
        obs::flight::set_enabled(flight_on);
        const KernelRun run = measure(db, env, CountKernel::Flat, threads);
        double& best = flight_on ? on_s : off_s;
        if (r == 0 || run.median_counting_seconds < best) {
          best = run.median_counting_seconds;
        }
      }
    }
    obs::flight::set_enabled(was_enabled);
    flight_overhead_pct =
        off_s > 0.0 ? (on_s - off_s) / off_s * 100.0 : 0.0;
    std::printf(
        "flight recorder overhead: %.2f%% counting wall time "
        "(on %.4fs vs off %.4fs, budget < 2%%)\n",
        flight_overhead_pct, on_s, off_s);
  }
  w.kv("flight_overhead_pct", flight_overhead_pct);

  w.end_object();
  os << '\n';
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
