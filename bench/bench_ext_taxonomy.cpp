// Extension bench: generalized (multi-level) association mining.
//
// Reproduces the Basic-vs-Cumulate comparison of Srikant & Agrawal (VLDB'95)
// on a Quest dataset with a synthetic taxonomy: Cumulate's item+ancestor
// candidate pruning shrinks the candidate sets and the counting work while
// producing the identical non-redundant frequent itemsets.
#include <cstdio>

#include "bench_common.hpp"
#include "taxonomy/generalized.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.01");
  cli.add_flag("roots", "taxonomy roots", "25");
  cli.add_flag("levels", "taxonomy levels", "3");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, {"T5.I2.D100K", "T10.I4.D100K"}, {1, 4});
  const double support = cli.get_double("support", 0.01);

  print_header("Extension: generalized associations (Basic vs Cumulate)",
               "Srikant & Agrawal VLDB'95, via the paper's Section 8 claim",
               env);

  TextTable table({"Database", "P", "algo", "candidates", "pruned",
                   "frequent", "checks", "modeled_s"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    TaxonomyParams tp;
    tp.universe = db.item_universe() +
                  static_cast<item_t>(cli.get_int("roots", 25)) * 2;
    tp.roots = static_cast<item_t>(cli.get_int("roots", 25));
    tp.levels = static_cast<std::uint32_t>(cli.get_int("levels", 3));
    // Parent categories live above the leaf universe: remap so leaves are
    // the Quest items and categories come after.
    Taxonomy tax(tp.universe);
    {
      // Two category levels above the Quest items.
      Rng rng(env.seed);
      const item_t cat1_begin = db.item_universe();
      const item_t cat1_count = tp.roots;
      const item_t cat2_begin = cat1_begin + cat1_count;
      const item_t cat2_count = std::max<item_t>(1, tp.roots / 4);
      for (item_t leaf = 0; leaf < db.item_universe(); ++leaf) {
        tax.add_edge(leaf,
                     cat1_begin + static_cast<item_t>(rng.uniform(cat1_count)));
      }
      for (item_t mid = 0; mid < cat1_count; ++mid) {
        tax.add_edge(cat1_begin + mid,
                     cat2_begin + static_cast<item_t>(rng.uniform(cat2_count)));
      }
      tax.freeze();
    }

    for (const std::uint32_t threads : env.thread_counts) {
      for (const GeneralizedAlgorithm algo :
           {GeneralizedAlgorithm::Basic, GeneralizedAlgorithm::Cumulate}) {
        MinerOptions opts;
        opts.min_support = support;
        opts.threads = threads;
        const MiningResult r = mine_generalized(db, tax, opts, algo);
        std::uint64_t checks = 0;
        for (const auto& it : r.iterations) checks += it.containment_checks;
        std::uint64_t pruned = 0;
        for (const auto& it : r.iterations) pruned += it.pruned;
        table.add_row({scaled_name(name, env), std::to_string(threads),
                       to_string(algo), std::to_string(r.total_candidates()),
                       std::to_string(pruned),
                       std::to_string(r.total_frequent()),
                       std::to_string(checks),
                       TextTable::num(r.modeled_total_seconds(), 3)});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpect: Cumulate generates strictly fewer candidates and "
            "containment checks; its 'frequent' count is lower only by the "
            "redundant item+ancestor itemsets Basic wastes time counting.");
  return 0;
}
