// Shared infrastructure for the figure/table reproduction benches.
//
// Every bench regenerates one table or figure of the paper's evaluation:
// same datasets (Table 2 names), same configurations, same rows/series.
// Datasets are scaled by --scale (default 0.1: D100K -> 10K) so the default
// run finishes on a laptop; --full restores paper sizes. Relative support
// is held constant under scaling, which preserves which itemsets are
// frequent (the Quest patterns are scale-invariant in frequency).
#pragma once

#include <string>
#include <vector>

#include "core/miner.hpp"
#include "core/options.hpp"
#include "data/quest_gen.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace smpmine::bench {

/// The paper's Table 2 dataset names in order.
const std::vector<std::string>& table2_datasets();

/// Registers the flags every bench shares (--scale, --full, --datasets,
/// --threads, --seed, --trace, --metrics, --perf-backend).
void add_common_flags(CliParser& cli);

struct BenchEnv {
  double scale = 0.1;
  std::uint64_t seed = 1996;
  /// Dataset names chosen via --datasets (comma separated) or the bench's
  /// default list.
  std::vector<std::string> datasets;
  /// Thread counts for parallel sweeps (--threads, comma separated).
  std::vector<std::uint32_t> thread_counts;
  /// Timing repetitions; the run with the smallest modeled time is kept
  /// (min-of-N rejects scheduler noise on a shared host).
  std::uint32_t repeat = 2;
  /// Artifact destinations (--trace / --metrics). When set, parse_env
  /// enables the tracer and registers an atexit hook that writes the
  /// Chrome trace and the accumulated run manifests when the bench exits.
  std::string trace_path;
  std::string metrics_path;
};

/// Parses the common flags. `default_datasets` is used when --datasets is
/// absent; `default_threads` likewise.
BenchEnv parse_env(const CliParser& cli,
                   std::vector<std::string> default_datasets,
                   std::vector<std::uint32_t> default_threads = {1, 2, 4, 8});

/// Generates a dataset by paper name, scaled. Prints a one-line progress
/// note to stderr (generation of full-size sets takes a while).
Database make_dataset(const std::string& name, const BenchEnv& env);

/// Effective dataset label including the scaled D, e.g. "T10.I4.D10K".
std::string scaled_name(const std::string& name, const BenchEnv& env);

/// % improvement of `optimized` over `base` (positive = optimized faster).
double pct_improvement(double base, double optimized);

/// Runs the miner `env.repeat` times and returns the run with the smallest
/// modeled computation time (results are identical across runs; only the
/// timings differ).
MiningResult run_miner(const Database& db, const MinerOptions& opts,
                       const BenchEnv& env);
/// Single run (for benches that aggregate work counters, not times).
MiningResult run_miner(const Database& db, const MinerOptions& opts);

/// Prints the standard bench header (paper reference + configuration).
void print_header(const std::string& title, const std::string& paper_ref,
                  const BenchEnv& env);

}  // namespace smpmine::bench
