// Extension bench: CCPD vs Count Distribution (Agrawal & Shafer '96).
//
// The paper's Section 7 argument for SMPs, made measurable: Count
// Distribution — the best of the shared-nothing parallelizations — pays
// per-iteration all-reduces of |C(k)| counters and duplicates the whole
// candidate tree on every node. CCPD on shared memory exchanges nothing
// and keeps one tree. The simulated cluster meters actual copied bytes.
#include <cstdio>

#include "bench_common.hpp"
#include "distmem/count_distribution.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env =
      parse_env(cli, {"T5.I2.D100K", "T10.I4.D100K"}, {1, 2, 4, 8});
  const double support = cli.get_double("support", 0.005);

  print_header("Extension: CCPD vs Count Distribution",
               "Section 7.1.2 comparison on a metered message-passing "
               "simulation",
               env);

  TextTable table({"Database", "P", "algo", "comm MB", "messages",
                   "aggregate tree MB", "counters exchanged"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    for (const std::uint32_t threads : env.thread_counts) {
      MinerOptions opts;
      opts.min_support = support;
      opts.threads = threads;
      const MiningResult ccpd = run_miner(db, opts);
      double ccpd_tree_mb = 0.0;
      for (const auto& it : ccpd.iterations) {
        ccpd_tree_mb = std::max(
            ccpd_tree_mb, static_cast<double>(it.tree_bytes) / 1e6);
      }
      table.add_row({scaled_name(name, env), std::to_string(threads), "CCPD",
                     "0.00", "0", TextTable::num(ccpd_tree_mb, 2), "0"});

      const CountDistributionResult cd =
          mine_count_distribution(db, opts, threads);
      double cd_tree_mb = 0.0;
      for (const auto& it : cd.mining.iterations) {
        cd_tree_mb = std::max(cd_tree_mb,
                              static_cast<double>(it.tree_bytes) / 1e6);
      }
      table.add_row(
          {scaled_name(name, env), std::to_string(threads), "CountDist",
           TextTable::num(static_cast<double>(cd.comm.bytes) / 1e6, 2),
           std::to_string(cd.comm.messages),
           TextTable::num(cd_tree_mb * threads, 2),
           std::to_string(cd.counters_exchanged)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpect: identical frequent itemsets (tested in ctest) while "
            "Count Distribution's communication grows with P x |C(k)| and "
            "its aggregate tree memory with P; CCPD holds both at zero/1x — "
            "the paper's case for shared-memory mining.");
  return 0;
}
