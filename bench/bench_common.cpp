#include "bench_common.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/timer.hpp"

namespace smpmine::bench {

const std::vector<std::string>& table2_datasets() {
  static const std::vector<std::string> names{
      "T5.I2.D100K",  "T10.I4.D100K",  "T15.I4.D100K",  "T20.I6.D100K",
      "T10.I6.D400K", "T10.I6.D800K",  "T10.I6.D1600K", "T10.I6.D3200K",
  };
  return names;
}

void add_common_flags(CliParser& cli) {
  cli.add_flag("scale", "fraction of the paper's D to generate", "0.1");
  cli.add_flag("full", "run the paper's full dataset sizes (scale=1)");
  cli.add_flag("datasets", "comma-separated Table 2 dataset names");
  cli.add_flag("threads", "comma-separated thread counts", "1,2,4,8");
  cli.add_flag("seed", "generator seed", "1996");
  cli.add_flag("repeat", "timing repetitions (min-of-N)", "2");
}

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

}  // namespace

BenchEnv parse_env(const CliParser& cli,
                   std::vector<std::string> default_datasets,
                   std::vector<std::uint32_t> default_threads) {
  BenchEnv env;
  env.scale = cli.get_double("scale", 0.1);
  if (cli.get_bool("full", false)) env.scale = 1.0;
  env.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1996));
  env.datasets = cli.has("datasets") ? split_csv(cli.get("datasets", ""))
                                     : std::move(default_datasets);
  if (cli.has("threads")) {
    env.thread_counts.clear();
    for (const std::string& t : split_csv(cli.get("threads", ""))) {
      env.thread_counts.push_back(
          static_cast<std::uint32_t>(std::stoul(t)));
    }
  } else {
    env.thread_counts = std::move(default_threads);
  }
  env.repeat = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(cli.get_int("repeat", 2)));
  return env;
}

Database make_dataset(const std::string& name, const BenchEnv& env) {
  auto params = QuestParams::from_name(name);
  if (!params.has_value()) {
    throw std::invalid_argument("unknown dataset name: " + name);
  }
  params->seed = env.seed;
  const QuestParams p = scaled(*params, env.scale);
  WallTimer timer;
  Database db = generate_quest(p);
  std::fprintf(stderr, "[gen] %s -> %s (%zu txns, %.1f MB) in %.1fs\n",
               name.c_str(), p.name().c_str(), db.size(),
               static_cast<double>(db.storage_bytes()) / 1e6,
               timer.seconds());
  return db;
}

std::string scaled_name(const std::string& name, const BenchEnv& env) {
  auto params = QuestParams::from_name(name);
  if (!params.has_value()) return name;
  return scaled(*params, env.scale).name();
}

double pct_improvement(double base, double optimized) {
  return base > 0.0 ? (base - optimized) / base * 100.0 : 0.0;
}

MiningResult run_miner(const Database& db, const MinerOptions& opts) {
  return mine(db, opts);
}

MiningResult run_miner(const Database& db, const MinerOptions& opts,
                       const BenchEnv& env) {
  MiningResult best = mine(db, opts);
  for (std::uint32_t r = 1; r < env.repeat; ++r) {
    MiningResult next = mine(db, opts);
    if (next.modeled_total_seconds() < best.modeled_total_seconds()) {
      best = std::move(next);
    }
  }
  return best;
}

void print_header(const std::string& title, const std::string& paper_ref,
                  const BenchEnv& env) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %.3g of paper D (use --full for paper sizes)\n\n",
              env.scale);
}

}  // namespace smpmine::bench
