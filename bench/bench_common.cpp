#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/results_io.hpp"
#include "obs/ledger/telemetry.hpp"
#include "obs/perf/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smpmine::bench {

namespace {

// Bench artifact state. Benches are single-threaded drivers (parallelism
// lives inside mine()), so plain statics suffice. The manifests are written
// at exit because a bench's run loop has no single point "after the last
// run" short of every main()'s return.
std::string g_trace_path;
std::string g_metrics_path;
std::vector<RunManifest> g_manifests;
/// Database::digest() -> human label, filled by make_dataset so run_miner
/// can label manifests without threading names through every bench.
std::unordered_map<std::uint64_t, std::string> g_dataset_labels;

void flush_artifacts() {
  try {
    if (!g_trace_path.empty()) {
      obs::Tracer::instance().save_chrome_trace(g_trace_path);
      std::fprintf(stderr, "[obs] trace written to %s\n",
                   g_trace_path.c_str());
    }
    if (!g_metrics_path.empty()) {
      save_run_manifests(g_manifests, g_metrics_path);
      std::fprintf(stderr, "[obs] %zu run manifests written to %s\n",
                   g_manifests.size(), g_metrics_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[obs] artifact write failed: %s\n", e.what());
  }
}

/// Counter deltas `after - before` (gauges keep their latest value): the
/// global registry accumulates across a bench's whole run loop, but a
/// manifest should describe its own entry.
obs::MetricsSnapshot snapshot_delta(const obs::MetricsSnapshot& before,
                                    obs::MetricsSnapshot after) {
  std::unordered_map<std::string_view, std::uint64_t> base;
  for (const auto& [name, value] : before.counters) base[name] = value;
  for (auto& [name, value] : after.counters) {
    if (const auto it = base.find(name); it != base.end()) {
      value -= it->second;
    }
  }
  std::unordered_map<std::string_view, const obs::HistogramSummary*> hbase;
  for (const auto& [name, summary] : before.histograms) {
    hbase[name] = &summary;
  }
  for (auto& [name, summary] : after.histograms) {
    if (const auto it = hbase.find(name); it != hbase.end()) {
      summary = summary.delta_since(*it->second);
    }
  }
  return after;
}

void record_run(const Database& db, const MinerOptions& opts,
                const MiningResult& result,
                const obs::MetricsSnapshot& before,
                const obs::perf::PhasePerfSnapshot& perf_before) {
  if (g_metrics_path.empty()) return;
  const std::uint64_t digest = db.digest();
  const auto label = g_dataset_labels.find(digest);
  RunManifest m = make_run_manifest(
      "bench", label != g_dataset_labels.end() ? label->second : "unknown",
      db, opts, result);
  m.metrics =
      snapshot_delta(before, obs::MetricsRegistry::instance().snapshot());
  m.phase_perf = obs::perf::delta_since(perf_before);
  g_manifests.push_back(std::move(m));
}

}  // namespace

const std::vector<std::string>& table2_datasets() {
  static const std::vector<std::string> names{
      "T5.I2.D100K",  "T10.I4.D100K",  "T15.I4.D100K",  "T20.I6.D100K",
      "T10.I6.D400K", "T10.I6.D800K",  "T10.I6.D1600K", "T10.I6.D3200K",
  };
  return names;
}

void add_common_flags(CliParser& cli) {
  cli.add_flag("scale", "fraction of the paper's D to generate", "0.1");
  cli.add_flag("full", "run the paper's full dataset sizes (scale=1)");
  cli.add_flag("datasets", "comma-separated Table 2 dataset names");
  cli.add_flag("threads", "comma-separated thread counts", "1,2,4,8");
  cli.add_flag("seed", "generator seed", "1996");
  cli.add_flag("repeat", "timing repetitions (min-of-N)", "2");
  cli.add_flag("trace", "write Chrome trace-event JSON here at exit");
  cli.add_flag("metrics", "write run-manifest JSON (one entry per mining "
                          "run) here at exit");
  cli.add_flag("perf-backend",
               "per-phase counter attribution: auto | hw | software | off",
               "off");
  cli.add_flag("flight", "flight recorder (always-on black box): on | off",
               "on");
  cli.add_flag("flight-dump",
               "pre-open this path for the smpmine.flight.v1 crash/stall "
               "dump and install the crash handlers");
  cli.add_flag("flight-watchdog-ms",
               "dump a flight report when no event lands for this many "
               "milliseconds (0 = no watchdog)", "0");
  cli.add_flag("telemetry-ms",
               "stream smpmine.telemetry.v1 JSONL samples every N "
               "milliseconds (0 = off; needs --telemetry-out)", "0");
  cli.add_flag("telemetry-out", "telemetry JSONL output path");
}

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

}  // namespace

BenchEnv parse_env(const CliParser& cli,
                   std::vector<std::string> default_datasets,
                   std::vector<std::uint32_t> default_threads) {
  BenchEnv env;
  env.scale = cli.get_double("scale", 0.1);
  if (cli.get_bool("full", false)) env.scale = 1.0;
  env.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1996));
  env.datasets = cli.has("datasets") ? split_csv(cli.get("datasets", ""))
                                     : std::move(default_datasets);
  if (cli.has("threads")) {
    env.thread_counts.clear();
    for (const std::string& t : split_csv(cli.get("threads", ""))) {
      env.thread_counts.push_back(
          static_cast<std::uint32_t>(std::stoul(t)));
    }
  } else {
    env.thread_counts = std::move(default_threads);
  }
  env.repeat = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(cli.get_int("repeat", 2)));
  {
    const std::string backend_name = cli.get("perf-backend", "off");
    const auto requested = obs::perf::backend_from_string(backend_name);
    if (!requested) {
      throw std::invalid_argument("bad --perf-backend: " + backend_name);
    }
    obs::perf::init(*requested);
  }
  // Name the bench master unconditionally: the flight recorder and log
  // prefixes use it even without --trace.
  obs::set_current_thread_name("bench main");
  if (cli.get("flight", "on") == "off") obs::flight::set_enabled(false);
  {
    const std::string dump_path = cli.get("flight-dump", "");
    if (!dump_path.empty()) {
      if (!obs::flight::set_dump_path(dump_path.c_str())) {
        throw std::invalid_argument("cannot open --flight-dump: " +
                                    dump_path);
      }
      obs::flight::install_crash_handler();
    }
    const int watchdog_ms = cli.get_int("flight-watchdog-ms", 0);
    if (watchdog_ms > 0) {
      obs::flight::start_watchdog(static_cast<std::uint64_t>(watchdog_ms));
    }
    obs::flight::sync_metrics_for_dump();
  }
  {
    const int telemetry_ms = cli.get_int("telemetry-ms", 0);
    const std::string telemetry_out = cli.get("telemetry-out", "");
    if (telemetry_ms > 0) {
      if (telemetry_out.empty()) {
        throw std::invalid_argument("--telemetry-ms needs --telemetry-out");
      }
      obs::ledger::TelemetryOptions topts;
      topts.period_ms = static_cast<std::uint32_t>(telemetry_ms);
      topts.path = telemetry_out;
      if (!obs::ledger::start(topts)) {
        throw std::invalid_argument("cannot start telemetry to: " +
                                    telemetry_out);
      }
      // Benches exit from main() with no common tail; stop (final record +
      // join) at exit like the artifact flush.
      static const int telemetry_stop =
          std::atexit([] { obs::ledger::stop(); });
      (void)telemetry_stop;
    }
  }
  env.trace_path = cli.get("trace", "");
  env.metrics_path = cli.get("metrics", "");
  if (!env.trace_path.empty() || !env.metrics_path.empty()) {
    g_trace_path = env.trace_path;
    g_metrics_path = env.metrics_path;
    if (!env.trace_path.empty()) {
      obs::Tracer::instance().set_enabled(true);
    }
    static const int registered = std::atexit(flush_artifacts);
    (void)registered;
  }
  return env;
}

Database make_dataset(const std::string& name, const BenchEnv& env) {
  auto params = QuestParams::from_name(name);
  if (!params.has_value()) {
    throw std::invalid_argument("unknown dataset name: " + name);
  }
  params->seed = env.seed;
  const QuestParams p = scaled(*params, env.scale);
  WallTimer timer;
  Database db = generate_quest(p);
  std::fprintf(stderr, "[gen] %s -> %s (%zu txns, %.1f MB) in %.1fs\n",
               name.c_str(), p.name().c_str(), db.size(),
               static_cast<double>(db.storage_bytes()) / 1e6,
               timer.seconds());
  if (!g_metrics_path.empty()) g_dataset_labels[db.digest()] = p.name();
  return db;
}

std::string scaled_name(const std::string& name, const BenchEnv& env) {
  auto params = QuestParams::from_name(name);
  if (!params.has_value()) return name;
  return scaled(*params, env.scale).name();
}

double pct_improvement(double base, double optimized) {
  return base > 0.0 ? (base - optimized) / base * 100.0 : 0.0;
}

MiningResult run_miner(const Database& db, const MinerOptions& opts) {
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::instance().snapshot();
  const obs::perf::PhasePerfSnapshot perf_before =
      obs::perf::PhasePerfRegistry::instance().snapshot();
  MiningResult result = mine(db, opts);
  record_run(db, opts, result, before, perf_before);
  return result;
}

MiningResult run_miner(const Database& db, const MinerOptions& opts,
                       const BenchEnv& env) {
  // The manifest's metric and perf deltas cover all `repeat` repetitions
  // (the registries are process-global); its timings are the kept best run.
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::instance().snapshot();
  const obs::perf::PhasePerfSnapshot perf_before =
      obs::perf::PhasePerfRegistry::instance().snapshot();
  MiningResult best = mine(db, opts);
  for (std::uint32_t r = 1; r < env.repeat; ++r) {
    MiningResult next = mine(db, opts);
    if (next.modeled_total_seconds() < best.modeled_total_seconds()) {
      best = std::move(next);
    }
  }
  record_run(db, opts, best, before, perf_before);
  return best;
}

void print_header(const std::string& title, const std::string& paper_ref,
                  const BenchEnv& env) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %.3g of paper D (use --full for paper sizes)\n\n",
              env.scale);
}

}  // namespace smpmine::bench
