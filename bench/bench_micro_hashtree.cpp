// Microbenchmarks for the hash tree: bucket functions, insertion
// throughput per placement policy, and counting traversal per subset-check
// strategy.
#include <benchmark/benchmark.h>

#include <vector>

#include "alloc/placement.hpp"
#include "hashtree/hash_tree.hpp"
#include "itemset/itemset.hpp"

namespace smpmine {
namespace {

void BM_HashBucket(benchmark::State& state) {
  const auto scheme = static_cast<HashScheme>(state.range(0));
  std::vector<item_t> f1(1000);
  for (item_t i = 0; i < 1000; ++i) f1[i] = i;
  const HashPolicy policy =
      scheme == HashScheme::Indirection
          ? HashPolicy(64, f1, 1000)
          : HashPolicy(scheme, 64);
  item_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.bucket(i));
    i = (i + 1) % 1000;
  }
}
BENCHMARK(BM_HashBucket)
    ->Arg(static_cast<int>(HashScheme::Interleaved))
    ->Arg(static_cast<int>(HashScheme::Bitonic))
    ->Arg(static_cast<int>(HashScheme::Indirection));

std::vector<std::vector<item_t>> combos(item_t universe, std::size_t k) {
  std::vector<item_t> base(universe);
  for (item_t i = 0; i < universe; ++i) base[i] = i;
  return k_subsets(base, k);
}

void BM_TreeInsert(benchmark::State& state) {
  const auto placement = static_cast<PlacementPolicy>(state.range(0));
  const auto candidates = combos(26, 3);  // 2600 candidates
  const HashPolicy policy(HashScheme::Bitonic, 8);
  for (auto _ : state) {
    PlacementArenas arenas(placement);
    HashTree tree({.k = 3, .fanout = 8, .leaf_threshold = 8}, policy, arenas);
    for (const auto& c : candidates) tree.insert(c);
    benchmark::DoNotOptimize(tree.num_candidates());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(candidates.size()));
}
BENCHMARK(BM_TreeInsert)
    ->Arg(static_cast<int>(PlacementPolicy::Malloc))
    ->Arg(static_cast<int>(PlacementPolicy::SPP))
    ->Arg(static_cast<int>(PlacementPolicy::LPP));

void BM_TreeCount(benchmark::State& state) {
  const auto check = static_cast<SubsetCheck>(state.range(0));
  PlacementArenas arenas(PlacementPolicy::SPP);
  const HashPolicy policy(HashScheme::Bitonic, 4);
  HashTree tree({.k = 3, .fanout = 4, .leaf_threshold = 8}, policy, arenas);
  for (const auto& c : combos(26, 3)) tree.insert(c);

  // A long transaction maximizes duplicate hash paths — the short-circuit
  // strategies' home turf.
  std::vector<item_t> txn(20);
  for (item_t i = 0; i < 20; ++i) txn[i] = i;

  CountContext ctx = tree.make_context(check);
  for (auto _ : state) {
    tree.count_transaction(txn, ctx);
  }
  state.counters["internal_visits_per_txn"] = benchmark::Counter(
      static_cast<double>(ctx.internal_visits) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_TreeCount)
    ->Arg(static_cast<int>(SubsetCheck::LeafVisited))
    ->Arg(static_cast<int>(SubsetCheck::VisitedFlags))
    ->Arg(static_cast<int>(SubsetCheck::FrameLocal));

void BM_TreeRemap(benchmark::State& state) {
  const auto candidates = combos(26, 3);
  const HashPolicy policy(HashScheme::Bitonic, 8);
  for (auto _ : state) {
    state.PauseTiming();
    PlacementArenas arenas(PlacementPolicy::GPP);
    HashTree tree({.k = 3, .fanout = 8, .leaf_threshold = 8}, policy, arenas);
    for (const auto& c : candidates) tree.insert(c);
    state.ResumeTiming();
    tree.remap_depth_first();
    benchmark::DoNotOptimize(tree.num_nodes());
  }
}
BENCHMARK(BM_TreeRemap);

void BM_SubsetContainment(benchmark::State& state) {
  std::vector<item_t> txn(30);
  for (item_t i = 0; i < 30; ++i) txn[i] = i * 3;
  const std::vector<item_t> yes{0, 27, 60};
  const std::vector<item_t> no{0, 28, 60};
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_subset_sorted(yes, txn));
    benchmark::DoNotOptimize(is_subset_sorted(no, txn));
  }
}
BENCHMARK(BM_SubsetContainment);

}  // namespace
}  // namespace smpmine

BENCHMARK_MAIN();
