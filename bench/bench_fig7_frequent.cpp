// Figure 7: frequent itemsets per iteration (0.5% support).
//
// The paper plots |F(k)| against k (log scale) for all eight Table 2
// datasets: counts peak at k=2..3 and tail off, with the longer-pattern
// datasets (I6) sustaining more iterations.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, table2_datasets());
  const double support = cli.get_double("support", 0.005);

  print_header("Figure 7: frequent itemsets per iteration",
               "Fig. 7 (|F(k)| vs k, 0.5% support, log scale)", env);

  TextTable table({"Database", "k", "frequent", "candidates"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    MinerOptions opts;
    opts.min_support = support;
    const MiningResult result = run_miner(db, opts);
    table.add_row({scaled_name(name, env), "1",
                   std::to_string(result.levels.front().size()), "-"});
    for (const IterationStats& it : result.iterations) {
      table.add_row({scaled_name(name, env), std::to_string(it.k),
                     std::to_string(it.frequent),
                     std::to_string(it.candidates)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: counts peak at small k and "
            "decay; T20.I6 and the T10.I6.D* family run the most "
            "iterations.");
  return 0;
}
