// Ablation: hash-tree shape knobs the paper fixes by formula.
//
// (a) Leaf threshold T and the adaptive fan-out rule (Section 3.1.1):
//     sweep T with adaptive H on/off and report tree size, balance, and
//     counting work.
// (b) Hash scheme occupancy: the Theorem 1 balance claim measured on real
//     candidate sets rather than the all-itemsets idealization.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, {"T10.I4.D100K"}, {1});
  const double support = cli.get_double("support", 0.005);

  print_header("Ablation: hash-tree shape",
               "Section 3.1.1 adaptive sizing + Section 4.1 balance, "
               "measured end-to-end",
               env);

  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);

    std::puts("-- leaf threshold sweep (adaptive fan-out) --");
    TextTable sweep({"T", "adaptive", "peak fanout", "peak nodes",
                     "peak tree MB", "count work (checks)", "time_s"});
    for (const std::uint32_t threshold : {2u, 4u, 8u, 16u, 64u}) {
      // The fixed-fanout counterpoint is run once (it is orders of
      // magnitude slower — that asymmetry is the result).
      std::vector<bool> modes{true};
      if (threshold == 8u) modes.push_back(false);
      for (const bool adaptive : modes) {
        MinerOptions opts;
        opts.min_support = support;
        opts.leaf_threshold = threshold;
        opts.adaptive_fanout = adaptive;
        opts.fixed_fanout = 32;
        const MiningResult r = run_miner(db, opts);
        std::uint32_t peak_fanout = 0;
        std::uint64_t peak_nodes = 0, peak_bytes = 0, checks = 0;
        for (const auto& it : r.iterations) {
          peak_fanout = std::max(peak_fanout, it.fanout);
          peak_nodes = std::max(peak_nodes, it.tree_nodes);
          peak_bytes = std::max(peak_bytes, it.tree_bytes);
          checks += it.containment_checks;
        }
        sweep.add_row({std::to_string(threshold), adaptive ? "yes" : "no(32)",
                       std::to_string(peak_fanout),
                       std::to_string(peak_nodes),
                       TextTable::num(static_cast<double>(peak_bytes) / 1e6, 2),
                       std::to_string(checks),
                       TextTable::num(r.total_seconds, 3)});
      }
    }
    std::fputs(sweep.render().c_str(), stdout);

    std::puts("\n-- hash scheme occupancy balance (real candidate sets) --");
    TextTable balance({"scheme", "k", "mean occ", "max occ", "stddev",
                       "max/mean"});
    for (const HashScheme scheme :
         {HashScheme::Interleaved, HashScheme::Bitonic,
          HashScheme::Indirection}) {
      MinerOptions opts;
      opts.min_support = support;
      opts.hash_scheme = scheme;
      const MiningResult r = run_miner(db, opts);
      for (const auto& it : r.iterations) {
        if (it.k > 4) break;  // the early, big trees are the story
        balance.add_row(
            {to_string(scheme), std::to_string(it.k),
             TextTable::num(it.mean_leaf_occupancy, 2),
             TextTable::num(it.max_leaf_occupancy, 0),
             TextTable::num(it.leaf_occupancy_stddev, 2),
             TextTable::num(it.max_leaf_occupancy /
                                std::max(1.0, it.mean_leaf_occupancy),
                            2)});
      }
    }
    std::fputs(balance.render().c_str(), stdout);
    std::puts("\nExpect: adaptive fan-out keeps peak occupancy near T across "
              "iterations; bitonic/indirection occupancy spread is tighter "
              "than interleaved (smaller stddev and max/mean).");
  }
  return 0;
}
