// Figure 10: per-iteration improvement of short-circuited subset checking
// on T20.I6.D100K, one processor, 0.5% support.
//
// The paper shows the benefit growing with k (up to ~60%) and falling off
// at the tail where the candidate tree is small.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, {"T20.I6.D100K"}, {1});
  const double support = cli.get_double("support", 0.005);

  print_header("Figure 10: short-circuit improvement per iteration",
               "Fig. 10 (% improvement per iteration, T20.I6.D100K, P=1)",
               env);

  TextTable table({"Database", "k", "base count_s", "sc count_s",
                   "improvement %", "visits saved %"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    MinerOptions base_opts;
    base_opts.min_support = support;
    base_opts.subset_check = SubsetCheck::LeafVisited;
    // Subset-check study: pin the pointer walk (flat always dedups).
    base_opts.count_kernel = CountKernel::Pointer;
    MinerOptions sc_opts = base_opts;
    sc_opts.subset_check = SubsetCheck::FrameLocal;

    const MiningResult base = run_miner(db, base_opts, env);
    const MiningResult sc = run_miner(db, sc_opts, env);
    const std::size_t iters =
        std::min(base.iterations.size(), sc.iterations.size());
    for (std::size_t i = 0; i < iters; ++i) {
      const IterationStats& b = base.iterations[i];
      const IterationStats& s = sc.iterations[i];
      const double visits_saved = pct_improvement(
          static_cast<double>(b.internal_visits + b.leaf_visits),
          static_cast<double>(s.internal_visits + s.leaf_visits));
      table.add_row({scaled_name(name, env), std::to_string(b.k),
                     TextTable::num(b.count_busy_max, 3),
                     TextTable::num(s.count_busy_max, 3),
                     TextTable::num(pct_improvement(b.count_busy_max,
                                                    s.count_busy_max), 1),
                     TextTable::num(visits_saved, 1)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: improvement rises with k "
            "(more tree levels to preempt) and falls at the tail where the "
            "candidate tree shrinks.");
  return 0;
}
