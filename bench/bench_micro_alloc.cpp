// Microbenchmarks for the custom placement library (paper Section 5):
// allocation throughput of the region vs the general-purpose heap, bulk
// free/reuse, and the pointer-chase payoff of contiguous placement.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "alloc/region.hpp"

namespace smpmine {
namespace {

void BM_RegionAlloc(benchmark::State& state) {
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  Region region;
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.alloc(block, 8));
    if (region.bytes_used() > (64u << 20)) {
      state.PauseTiming();
      region.reset();
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
}
BENCHMARK(BM_RegionAlloc)->Arg(16)->Arg(64)->Arg(256);

void BM_MallocArenaAlloc(benchmark::State& state) {
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  auto arena = std::make_unique<MallocArena>();
  std::size_t used = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena->alloc(block, 8));
    used += block;
    if (used > (64u << 20)) {
      state.PauseTiming();
      arena->release();
      used = 0;
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
}
BENCHMARK(BM_MallocArenaAlloc)->Arg(16)->Arg(64)->Arg(256);

void BM_RegionReset(benchmark::State& state) {
  Region region;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) region.alloc(32, 8);
    region.reset();  // O(1) whole-structure free
  }
}
BENCHMARK(BM_RegionReset);

struct Node {
  Node* next;
  std::uint64_t payload[7];  // 64-byte node
};

/// Builds a list whose nodes come from `arena` in creation order, then
/// measures the chase. Region nodes are contiguous; heap nodes land
/// wherever the allocator put them (with a shuffle of interleaved decoy
/// allocations to model heap fragmentation).
template <typename MakeArena>
void pointer_chase(benchmark::State& state, MakeArena make_arena,
                   bool fragment) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto arena = make_arena();
  std::vector<void*> decoys;
  Node* head = nullptr;
  Node** tail = &head;
  for (std::size_t i = 0; i < n; ++i) {
    if (fragment) {
      // Interleave decoy allocations, as the mixed HTN/LN/itemset build of
      // the hash tree does.
      decoys.push_back(::operator new(48));
    }
    auto* node = new (arena->alloc(sizeof(Node), alignof(Node))) Node{};
    node->payload[0] = i;
    *tail = node;
    tail = &node->next;
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (Node* p = head; p != nullptr; p = p->next) sum += p->payload[0];
    benchmark::DoNotOptimize(sum);
  }
  for (void* d : decoys) ::operator delete(d);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ChaseRegionList(benchmark::State& state) {
  pointer_chase(state, [] { return std::make_unique<Region>(); }, false);
}
BENCHMARK(BM_ChaseRegionList)->Arg(1 << 14)->Arg(1 << 17);

void BM_ChaseHeapList(benchmark::State& state) {
  pointer_chase(state, [] { return std::make_unique<MallocArena>(); }, true);
}
BENCHMARK(BM_ChaseHeapList)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
}  // namespace smpmine

BENCHMARK_MAIN();
