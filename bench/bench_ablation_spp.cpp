// Ablation: the three SPP variations of Section 5.1 (common region,
// individual regions, grouped regions), which the paper describes but only
// evaluates in the common-region form. The locality trace shows why common
// wins for the counting traversal: interleaving block kinds in creation
// order matches the LN -> itemset -> LN access pattern, while per-kind
// regions force a region hop on every step.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, {"T10.I4.D100K", "T10.I6.D400K"}, {1});
  const double support = cli.get_double("support", 0.005);

  print_header("Ablation: SPP variations (common/individual/grouped)",
               "Section 5.1's three simple-placement variants", env);

  TextTable table({"Database", "variant", "wall_s", "same-line rate",
                   "mean stride KB", "distinct pages"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    for (const SppVariant variant :
         {SppVariant::Common, SppVariant::Individual, SppVariant::Grouped}) {
      MinerOptions opts;
      opts.min_support = support;
      opts.placement = PlacementPolicy::SPP;
      opts.spp_variant = variant;
      opts.collect_locality = true;
      // SPP-variant study walks the pointer tree; the frozen kernel would
      // mask per-kind segregation effects.
      opts.count_kernel = CountKernel::Pointer;
      const MiningResult r = run_miner(db, opts, env);

      double same_line = 0.0, stride = 0.0, weight = 0.0;
      std::uint64_t pages = 0;
      for (const auto& it : r.iterations) {
        const auto w = static_cast<double>(it.locality_distinct_lines);
        same_line += it.locality_same_line_rate * w;
        stride += it.locality_mean_stride * w;
        weight += w;
        pages = std::max(pages, it.locality_distinct_pages);
      }
      if (weight > 0) {
        same_line /= weight;
        stride /= weight;
      }
      table.add_row({scaled_name(name, env), to_string(variant),
                     TextTable::num(r.total_seconds, 3),
                     TextTable::num(same_line, 3),
                     TextTable::num(stride / 1024.0, 1),
                     std::to_string(pages)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpect: common has the best same-line rate (creation order "
            "interleaves the kinds the traversal touches together); "
            "individual regions trade that for per-kind density.");
  return 0;
}
