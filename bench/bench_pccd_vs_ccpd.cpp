// Section 6 statement: "We do not present any results for the PCCD
// approach since it performs very poorly, and results in a speed-down on
// more than one processor."
//
// This bench measures why: PCCD makes every thread scan the entire
// database, so its total traversal work grows ~linearly with P while
// CCPD's stays constant. The modeled computation time and the
// machine-independent work counters both show the speed-down.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.005");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env =
      parse_env(cli, {"T5.I2.D100K", "T10.I4.D100K"}, {1, 2, 4, 8});
  const double support = cli.get_double("support", 0.005);

  print_header("PCCD vs CCPD",
               "Section 6 (PCCD speed-down; why the paper only evaluates "
               "CCPD)",
               env);

  TextTable table({"Database", "P", "algo", "modeled_s", "work (checks)",
                   "work vs CCPD P=1"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    std::uint64_t ccpd_base_work = 0;
    for (const std::uint32_t threads : env.thread_counts) {
      for (const Algorithm algo : {Algorithm::CCPD, Algorithm::PCCD}) {
        MinerOptions opts;
        opts.min_support = support;
        opts.threads = threads;
        opts.algorithm = algo;
        const MiningResult r = run_miner(db, opts);
        const std::uint64_t work = r.traversal_work();
        if (algo == Algorithm::CCPD && threads == env.thread_counts.front()) {
          ccpd_base_work = work;
        }
        table.add_row(
            {scaled_name(name, env), std::to_string(threads),
             to_string(algo), TextTable::num(r.modeled_total_seconds(), 3),
             std::to_string(work),
             TextTable::num(ccpd_base_work > 0
                                ? static_cast<double>(work) /
                                      static_cast<double>(ccpd_base_work)
                                : 1.0,
                            2) + "x"});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpect: CCPD's total work is ~constant in P; PCCD's grows "
            "toward Px (every thread re-reads the whole database), the "
            "paper's speed-down.");
  return 0;
}
