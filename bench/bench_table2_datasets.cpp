// Table 2: database properties.
//
// Paper values (full size): T5.I2.D100K 2.6MB ... T10.I6.D3200K 136.9MB.
// This bench generates each dataset (scaled by default) and prints the
// measured T, I, D and total size next to the paper's full-size figures.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

namespace {

// Paper Table 2 "Total size" column, MB, in table2_datasets() order.
constexpr double kPaperSizesMb[] = {2.6, 4.3, 6.2, 7.9, 17.1, 34.6, 69.8, 136.9};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, table2_datasets());

  print_header("Table 2: database properties",
               "Table 2 (T, I, D, total size per benchmark database)", env);

  TextTable table({"Database", "T(meas)", "I(param)", "D", "size MB",
                   "paper MB (full)", "scaled paper MB"});
  for (std::size_t i = 0; i < env.datasets.size(); ++i) {
    const std::string& name = env.datasets[i];
    const Database db = make_dataset(name, env);
    const auto params = QuestParams::from_name(name);
    const double paper_mb =
        i < std::size(kPaperSizesMb) && env.datasets == table2_datasets()
            ? kPaperSizesMb[i]
            : 0.0;
    table.add_row({scaled_name(name, env),
                   TextTable::num(db.avg_transaction_size(), 2),
                   TextTable::num(params ? params->avg_pattern_len : 0.0, 0),
                   std::to_string(db.size()),
                   TextTable::num(static_cast<double>(db.storage_bytes()) / 1e6, 2),
                   paper_mb > 0 ? TextTable::num(paper_mb, 1) : "-",
                   paper_mb > 0 ? TextTable::num(paper_mb * env.scale, 2) : "-"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nNote: 'size MB' counts item + offset storage; the paper's "
            "column is its on-disk format, so compare growth shape, not "
            "absolute bytes.");
  return 0;
}
