// Figure 8: effect of computation balancing (COMP) and hash-tree balancing
// (TREE), 0.5% support.
//
// Four configurations per dataset and thread count:
//   base      — block-partitioned candidate generation, mod-H hash
//   COMP      — bitonic (greedy) computation balancing only
//   TREE      — bitonic indirection hash function only
//   COMP-TREE — both
// The paper reports % improvement in computation time over the base on
// 1/2/4/8 processors. On this host wall time cannot expose parallel
// balance (threads share one core), so the improvement is computed on the
// modeled parallel computation time: per-iteration critical path of
// per-thread CPU time plus serial phases — exactly the quantity balancing
// optimizes.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

namespace {

MinerOptions config(std::uint32_t threads, bool comp, bool tree) {
  MinerOptions opts;
  opts.min_support = 0.005;
  opts.threads = threads;
  opts.parallel_candgen_threshold = 1;  // always exercise the partitioner
  opts.balance = comp ? PartitionScheme::Bitonic : PartitionScheme::Block;
  opts.hash_scheme = tree ? HashScheme::Indirection : HashScheme::Interleaved;
  opts.subset_check = SubsetCheck::LeafVisited;  // short-circuit is Fig 9
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(
      cli, {"T5.I2.D100K", "T10.I4.D100K", "T15.I4.D100K", "T10.I6.D400K"});

  print_header("Figure 8: computation and hash tree balancing",
               "Fig. 8 (% improvement of COMP / TREE / COMP-TREE, 0.5% "
               "support, P = 1,2,4,8)",
               env);

  TextTable table({"Database", "P", "base_s", "COMP %", "TREE %",
                   "COMP-TREE %", "candgen imbalance base->COMP"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    for (const std::uint32_t threads : env.thread_counts) {
      const MiningResult base =
          run_miner(db, config(threads, false, false), env);
      const MiningResult comp = run_miner(db, config(threads, true, false), env);
      const MiningResult tree = run_miner(db, config(threads, false, true), env);
      const MiningResult both = run_miner(db, config(threads, true, true), env);

      const double base_t = base.modeled_total_seconds();
      auto imb = [](const MiningResult& r) {
        double worst = 1.0;
        for (const auto& it : r.iterations) {
          worst = std::max(worst, it.candgen_imbalance);
        }
        return worst;
      };
      table.add_row(
          {scaled_name(name, env), std::to_string(threads),
           TextTable::num(base_t, 3),
           TextTable::num(pct_improvement(base_t, comp.modeled_total_seconds()), 1),
           TextTable::num(pct_improvement(base_t, tree.modeled_total_seconds()), 1),
           TextTable::num(pct_improvement(base_t, both.modeled_total_seconds()), 1),
           TextTable::num(imb(base), 2) + " -> " + TextTable::num(imb(comp), 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: COMP ~0% at P=1 and grows "
            "with P; TREE helps even at P=1 (~30%); COMP-TREE is best on "
            "multiple processors (~40%).");
  return 0;
}
