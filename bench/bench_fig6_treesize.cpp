// Figure 6: intermediate hash-tree size per iteration (0.1% support).
//
// The paper plots, for each dataset, the candidate hash tree's size in
// MB across iterations 2..10 on a log scale: C2 is the big spike, sizes
// fall with k, and larger datasets keep larger trees longer. This bench
// prints the same series from the per-iteration tree-bytes statistic.
#include <cstdio>

#include "bench_common.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("support", "minimum support (fraction)", "0.001");
  if (!cli.parse(argc, argv)) return 1;
  // The paper's Fig 6 series (T15 omitted there as well).
  const BenchEnv env = parse_env(
      cli, {"T5.I2.D100K", "T10.I4.D100K", "T20.I6.D100K", "T10.I6.D400K",
            "T10.I6.D800K", "T10.I6.D1600K"});
  const double support = cli.get_double("support", 0.001);

  print_header("Figure 6: intermediate hash tree size",
               "Fig. 6 (tree MB vs iteration, 0.1% support, log scale)", env);

  TextTable table({"Database", "k", "candidates", "tree nodes", "tree MB"});
  for (const std::string& name : env.datasets) {
    const Database db = make_dataset(name, env);
    MinerOptions opts;
    opts.min_support = support;
    const MiningResult result = run_miner(db, opts);
    for (const IterationStats& it : result.iterations) {
      table.add_row({scaled_name(name, env), std::to_string(it.k),
                     std::to_string(it.candidates),
                     std::to_string(it.tree_nodes),
                     TextTable::num(static_cast<double>(it.tree_bytes) / 1e6, 3)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape to check against the paper: C2 dominates, sizes decay "
            "with k, and the T10.I6.D* series grows with D while keeping "
            "the same profile.");
  return 0;
}
