// Extension bench: sequential-pattern mining (AprioriAll) phase profile.
//
// The paper's Section 8 claims its hash-tree machinery transfers to
// sequential patterns; the litemset phase here literally runs on it (with
// group-dedup counting). This bench profiles the three phases across
// support levels and thread counts.
#include <cstdio>

#include "bench_common.hpp"
#include "seqpat/apriori_all.hpp"

using namespace smpmine;
using namespace smpmine::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_flag("customers", "number of customers", "20000");
  cli.add_flag("supports", "comma-separated supports", "0.03,0.015");
  if (!cli.parse(argc, argv)) return 1;
  const BenchEnv env = parse_env(cli, {}, {1, 4});

  SeqGenParams gen;
  gen.num_customers =
      static_cast<std::uint32_t>(cli.get_int("customers", 20'000));
  gen.num_items = 200;
  gen.seed = env.seed;
  const SequenceDatabase db = generate_sequences(gen);
  std::printf("sequence db: %zu customers, %zu transactions\n\n",
              db.num_customers(), db.total_transactions());

  print_header("Extension: sequential patterns (AprioriAll)",
               "Agrawal & Srikant ICDE'95, via the paper's Section 8 claim",
               env);

  std::vector<double> supports;
  {
    std::string csv = cli.get("supports", "0.03,0.015");
    std::size_t pos = 0;
    while (pos < csv.size()) {
      std::size_t next = csv.find(',', pos);
      if (next == std::string::npos) next = csv.size();
      supports.push_back(std::stod(csv.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  TextTable table({"supp%", "P", "litemsets", "cand seqs", "patterns",
                   "litemset_s", "transform_s", "sequence_s"});
  for (const double support : supports) {
    for (const std::uint32_t threads : env.thread_counts) {
      SeqMineOptions opts;
      opts.min_support = support;
      opts.threads = threads;
      const SeqMiningResult r = mine_sequences(db, opts);
      std::size_t litemsets = 0;
      for (const auto& level : r.litemsets) litemsets += level.size();
      table.add_row({TextTable::num(support * 100, 2),
                     std::to_string(threads), std::to_string(litemsets),
                     std::to_string(r.candidate_sequences),
                     std::to_string(r.patterns.size()),
                     TextTable::num(r.litemset_seconds, 3),
                     TextTable::num(r.transform_seconds, 3),
                     TextTable::num(r.sequence_seconds, 3)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpect: lower support multiplies litemsets and candidate "
            "sequences; extra threads cut all three phase times (they are "
            "customer-parallel).");
  return 0;
}
