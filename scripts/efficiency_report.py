#!/usr/bin/env python3
"""Speedup autopsy over smpmine run manifests (schema v3).

Reads one or more ``smpmine.run.v3`` / ``smpmine.runs.v3`` manifests and
renders the parallel-efficiency ledger they carry:

* the run-level loss decomposition (work / serial / imbalance /
  contention / overhead fractions of the ``P x wall`` thread-seconds
  budget), with the exhaustiveness identity (fractions sum to 1) checked
  to ``--identity-tolerance`` on every run;
* a per-phase imbalance table (wall max vs CPU sum/max, 1 - mean/max
  imbalance, measured barrier and lock waits, work units);
* a critical-path summary (which phases the run's wall time is made of,
  split serial vs parallel);
* per-iteration loss rows; and
* when the manifests span several thread counts of the same dataset
  (a fig11-style sweep), the Fig-11 speedup decomposition: measured
  efficiency per P next to the losses that explain the gap to ideal.

With ``--diff BASELINE`` the first run is gated against a golden
manifest and the script exits nonzero when a loss bin grew by more than
its threshold:

* ``--max-serial-increase``      absolute serial_loss increase (0.05)
* ``--max-imbalance-increase``   absolute imbalance_loss increase (0.05)
* ``--max-contention-increase``  absolute contention_loss increase (0.05)
* ``--min-wall-seconds``         runs faster than this are never gated
                                 (0.005 — sub-5ms runs are noise)

Overhead is deliberately not gated: on an oversubscribed CI host the
residual (scheduling) bin absorbs the noise the other bins must not.

Usage:
    scripts/efficiency_report.py run.json
    scripts/efficiency_report.py sweep.json          # fig11-style file
    scripts/efficiency_report.py run.json --diff golden.json
"""

import argparse
import json
import sys

PHASES = ("f1", "candgen", "remap", "freeze", "vertbuild", "count",
          "reduce", "select")
LOSS_BINS = ("serial_loss", "imbalance_loss", "contention_loss",
             "overhead_loss")


def fail(msg: str) -> None:
    print(f"efficiency_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_runs(path: str) -> list:
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if schema == "smpmine.run.v3":
        return [doc["run"]]
    if schema == "smpmine.runs.v3":
        runs = doc.get("runs", [])
        if not runs:
            fail(f"{path}: empty runs[]")
        return runs
    fail(f"{path}: schema {schema!r} has no efficiency ledger "
         "(need smpmine.run(s).v3)")


def efficiency(run: dict) -> dict:
    eff = run.get("efficiency")
    if not isinstance(eff, dict):
        fail(f"run has no efficiency object (tool {run.get('tool')!r})")
    return eff


def check_identity(eff: dict, tolerance: float, context: str) -> None:
    """The decomposition bins are exhaustive and exclusive by
    construction; a sum off by more than the tolerance means the ledger
    and the decomposition disagree about the budget — a producer bug."""
    total = eff.get("work_fraction", 0.0) + sum(
        eff.get(b, 0.0) for b in LOSS_BINS)
    if eff.get("budget_seconds", 0.0) > 0 and abs(total - 1.0) > tolerance:
        fail(f"{context}: decomposition fractions sum to {total:.4f}, "
             f"want 1 +- {tolerance}")


def pct(x: float) -> str:
    return f"{x * 100.0:6.1f}%"


def render_decomposition(eff: dict) -> None:
    print(f"  budget: {eff['threads']} threads x {eff['wall_seconds']:.4f}s "
          f"wall = {eff['budget_seconds']:.4f} thread-seconds "
          f"(serial fraction of wall: {eff['serial_fraction']:.3f})")
    print(f"  {'work':>10} {'serial':>8} {'imbalance':>10} "
          f"{'contention':>11} {'overhead':>9}")
    print(f"  {pct(eff['work_fraction']):>10} {pct(eff['serial_loss']):>8} "
          f"{pct(eff['imbalance_loss']):>10} "
          f"{pct(eff['contention_loss']):>11} "
          f"{pct(eff['overhead_loss']):>9}")


def render_phase_table(run: dict) -> None:
    ledger = run.get("ledger", {})
    phases = ledger.get("phases", {})
    if not phases:
        print("  (empty ledger)")
        return
    print(f"  {'phase':<10} {'thr':>3} {'wall_max s':>10} {'cpu_sum s':>10} "
          f"{'cpu_max s':>10} {'imbal':>6} {'barrier s':>10} "
          f"{'lock s':>8} {'work units':>12}")
    ordered = [p for p in PHASES if p in phases] + sorted(
        p for p in phases if p not in PHASES)
    for name in ordered:
        p = phases[name]
        active = p.get("threads_active", 0)
        cpu_sum = p.get("cpu_sum_ns", 0) / 1e9
        cpu_max = p.get("cpu_max_ns", 0) / 1e9
        # 1 - mean/max of per-thread CPU: 0 = perfectly balanced, ->1 =
        # one thread did everything while the rest waited at the barrier.
        imbal = (1.0 - (cpu_sum / active) / cpu_max
                 if active > 1 and cpu_max > 0 else 0.0)
        print(f"  {name:<10} {active:>3} "
              f"{p.get('wall_max_ns', 0) / 1e9:>10.4f} {cpu_sum:>10.4f} "
              f"{cpu_max:>10.4f} {imbal:>6.3f} "
              f"{p.get('barrier_wait_ns', 0) / 1e9:>10.4f} "
              f"{p.get('lock_wait_ns', 0) / 1e9:>8.4f} "
              f"{p.get('work_units', 0):>12}")


def render_critical_path(run: dict) -> None:
    """Where the run's wall time comes from: each phase's wall_max is a
    barrier-to-barrier segment of the critical path."""
    phases = run.get("ledger", {}).get("phases", {})
    total = sum(p.get("wall_max_ns", 0) for p in phases.values())
    if total == 0:
        return
    serial = sum(p.get("wall_max_ns", 0) for p in phases.values()
                 if p.get("threads_active", 0) <= 1)
    rows = sorted(phases.items(), key=lambda kv: -kv[1].get("wall_max_ns", 0))
    top = ", ".join(
        f"{name} {p.get('wall_max_ns', 0) / total * 100:.0f}%"
        for name, p in rows[:3])
    print(f"  critical path: {total / 1e9:.4f}s "
          f"({serial / total * 100:.1f}% in serial phases); top: {top}")


def render_iterations(run: dict) -> None:
    its = [it for it in run.get("iterations", [])
           if it.get("efficiency", {}).get("budget_seconds", 0) > 0]
    if not its:
        return
    print(f"  {'k':>3} {'wall s':>9} {'work':>7} {'serial':>7} "
          f"{'imbal':>7} {'cont':>7} {'ovhd':>7}")
    for it in its:
        eff = it["efficiency"]
        print(f"  {it.get('k', '?'):>3} {eff['wall_seconds']:>9.4f} "
              f"{pct(eff['work_fraction']):>7} {pct(eff['serial_loss']):>7} "
              f"{pct(eff['imbalance_loss']):>7} "
              f"{pct(eff['contention_loss']):>7} "
              f"{pct(eff['overhead_loss']):>7}")


def render_run(run: dict, index: int, tolerance: float) -> None:
    label = run.get("dataset", {}).get("label", "?")
    opts = run.get("options", {})
    print(f"run[{index}]: {run.get('tool', '?')} on {label} "
          f"({opts.get('algorithm', '?')}, {opts.get('threads', '?')} "
          f"threads)")
    eff = efficiency(run)
    check_identity(eff, tolerance, f"run[{index}]")
    for i, it in enumerate(run.get("iterations", [])):
        if "efficiency" in it:
            check_identity(it["efficiency"], tolerance,
                           f"run[{index}] iteration {i}")
    render_decomposition(eff)
    render_phase_table(run)
    render_critical_path(run)
    render_iterations(run)
    print()


def render_speedup_sweep(runs: list) -> None:
    """Fig-11 decomposition: for datasets mined at several thread counts,
    measured efficiency (T1 / (P x TP), modeled wall) against the loss
    bins that explain the shortfall from ideal."""
    by_dataset = {}
    for run in runs:
        label = run.get("dataset", {}).get("label", "?")
        threads = run.get("options", {}).get("threads", 0)
        by_dataset.setdefault(label, {})[threads] = run
    printed_header = False
    for label, by_p in sorted(by_dataset.items()):
        if len(by_p) < 2:
            continue
        base_p = min(by_p)
        base_wall = efficiency(by_p[base_p]).get("wall_seconds", 0.0)
        if base_wall <= 0:
            continue
        if not printed_header:
            print("speedup decomposition (wall from the ledger; "
                  "losses are fractions of the P x wall budget):")
            printed_header = True
        print(f"  {label} (baseline P={base_p}):")
        print(f"  {'P':>4} {'wall s':>9} {'speedup':>8} {'eff':>7} "
              f"{'serial':>7} {'imbal':>7} {'cont':>7} {'ovhd':>7}")
        for p in sorted(by_p):
            eff = efficiency(by_p[p])
            wall = eff.get("wall_seconds", 0.0)
            speedup = base_wall * base_p / wall if wall > 0 else 0.0
            measured_eff = speedup / p if p else 0.0
            print(f"  {p:>4} {wall:>9.4f} {speedup:>8.2f} "
                  f"{pct(measured_eff):>7} {pct(eff['serial_loss']):>7} "
                  f"{pct(eff['imbalance_loss']):>7} "
                  f"{pct(eff['contention_loss']):>7} "
                  f"{pct(eff['overhead_loss']):>7}")
        print()


def diff_runs(current: dict, base: dict, args) -> int:
    cur, old = efficiency(current), efficiency(base)
    if cur.get("wall_seconds", 0.0) < args.min_wall_seconds:
        print(f"diff: current wall {cur.get('wall_seconds', 0.0):.4f}s "
              f"below --min-wall-seconds, not gated")
        return 0
    gates = {
        "serial_loss": args.max_serial_increase,
        "imbalance_loss": args.max_imbalance_increase,
        "contention_loss": args.max_contention_increase,
    }
    regressions = 0
    print(f"{'bin':<16} {'base':>8} {'cur':>8} {'delta':>8}  verdict")
    for name in ("work_fraction",) + LOSS_BINS:
        b, c = old.get(name, 0.0), cur.get(name, 0.0)
        delta = c - b
        problem = name in gates and delta > gates[name]
        verdict = (f"REGRESSION: +{delta:.3f} > {gates[name]}" if problem
                   else "ok" if name in gates else "(not gated)")
        print(f"{name:<16} {pct(b):>8} {pct(c):>8} {delta:>+8.3f}  {verdict}")
        regressions += problem
    return regressions


def main() -> None:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("manifests", nargs="+",
                    help="run-manifest JSON file(s) (smpmine.run(s).v3)")
    ap.add_argument("--diff", metavar="BASELINE",
                    help="gate manifests[0]'s first run against this "
                         "golden manifest, exit nonzero on regression")
    ap.add_argument("--max-serial-increase", type=float, default=0.05)
    ap.add_argument("--max-imbalance-increase", type=float, default=0.05)
    ap.add_argument("--max-contention-increase", type=float, default=0.05)
    ap.add_argument("--min-wall-seconds", type=float, default=0.005)
    ap.add_argument("--identity-tolerance", type=float, default=0.02,
                    help="allowed |sum(fractions) - 1| per run (0.02)")
    args = ap.parse_args()

    index = 0
    all_runs = []
    for path in args.manifests:
        runs = load_runs(path)
        all_runs += runs
        for run in runs:
            render_run(run, index, args.identity_tolerance)
            index += 1
    render_speedup_sweep(all_runs)

    if args.diff:
        current = load_runs(args.manifests[0])[0]
        base = load_runs(args.diff)[0]
        regressions = diff_runs(current, base, args)
        if regressions:
            fail(f"{regressions} loss regression(s) vs {args.diff}")
        print(f"efficiency_report: OK (no regressions vs {args.diff})")


if __name__ == "__main__":
    main()
