#!/usr/bin/env python3
"""Validate and gate a BENCH_counting.json artifact.

Reads the smpmine.bench.v1 JSON that bench_count_kernel emits, checks the
schema, prints a summary, and (optionally) fails if the flat kernel's
speedup over the pointer walk drops below --min-speedup. CI runs this on a
small-N smoke artifact with a loose gate; the committed full-scale artifact
is gated at the PR's acceptance threshold (1.3x).

Usage:
    scripts/bench_compare.py BENCH_counting.json [--min-speedup 1.3]
"""

import argparse
import json
import sys

SCHEMA = "smpmine.bench.v1"

RUN_FIELDS = {
    "dataset": str,
    "threads": int,
    "kernel": str,
    "median_ns_per_transaction": (int, float),
    "median_counting_seconds": (int, float),
    "hits": int,
    "iterations": int,
    "tile_size": int,
    "speedup_vs_pointer": (int, float),
}


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc: dict) -> list:
    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if doc.get("bench") != "count_kernel":
        fail(f"bench is {doc.get('bench')!r}, want 'count_kernel'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs[] missing or empty")
    for i, run in enumerate(runs):
        for field, types in RUN_FIELDS.items():
            if field not in run:
                fail(f"runs[{i}] missing field {field!r}")
            if not isinstance(run[field], types):
                fail(f"runs[{i}].{field} has type {type(run[field]).__name__}")
        if run["kernel"] not in ("pointer", "flat"):
            fail(f"runs[{i}].kernel is {run['kernel']!r}")
    return runs


def pair_up(runs: list) -> dict:
    """Group runs by (dataset, threads) -> {kernel: run}."""
    pairs = {}
    for run in runs:
        pairs.setdefault((run["dataset"], run["threads"]), {})[
            run["kernel"]
        ] = run
    for key, kernels in pairs.items():
        if set(kernels) != {"pointer", "flat"}:
            fail(f"{key}: expected one pointer and one flat run, "
                 f"got {sorted(kernels)}")
        # Both kernels count the same database: identical hit totals are
        # the correctness signature, not just a nicety.
        if kernels["pointer"]["hits"] != kernels["flat"]["hits"]:
            fail(f"{key}: hit counts diverge "
                 f"(pointer {kernels['pointer']['hits']} != "
                 f"flat {kernels['flat']['hits']})")
    return pairs


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("artifact", help="BENCH_counting.json path")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail if any flat/pointer speedup is below this")
    args = ap.parse_args()

    with open(args.artifact) as f:
        doc = json.load(f)
    runs = validate(doc)
    pairs = pair_up(runs)

    print(f"{'dataset':<16} {'P':>2} {'pointer ns/txn':>15} "
          f"{'flat ns/txn':>12} {'speedup':>8}")
    worst = None
    for (dataset, threads), kernels in sorted(pairs.items()):
        ptr = kernels["pointer"]["median_ns_per_transaction"]
        flat = kernels["flat"]["median_ns_per_transaction"]
        speedup = kernels["flat"]["speedup_vs_pointer"]
        print(f"{dataset:<16} {threads:>2} {ptr:>15.1f} {flat:>12.1f} "
              f"{speedup:>8.2f}")
        if worst is None or speedup < worst:
            worst = speedup

    if args.min_speedup is not None and worst < args.min_speedup:
        fail(f"worst speedup {worst:.2f}x below gate {args.min_speedup}x")
    print(f"bench_compare: OK (worst speedup {worst:.2f}x)")


if __name__ == "__main__":
    main()
