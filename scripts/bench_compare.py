#!/usr/bin/env python3
"""Validate and gate smpmine.bench.v1 artifacts.

Reads a bench-emitted JSON artifact, checks the schema, prints a summary,
and (optionally) fails when a gated metric regresses. Two gating modes:

* Generic: ``--spec name:metric:threshold[:field=value,...]`` (repeatable)
  gates any ``smpmine.bench.v1`` file whose ``bench`` field equals
  ``name`` — every run must have ``run[metric] >= threshold``. The
  optional fourth component filters which runs the gate applies to by
  exact field match (e.g. ``kernel=vertical,dataset=deep`` gates only the
  vertical runs of the deep workload — a forced-vertical run on a
  horizontal-friendly workload is *expected* to be slower than pointer,
  so an unfiltered speedup gate would misfire). CI uses this for each
  bench smoke artifact without this script needing to know the bench's
  fields. ``--max-spec`` is the ceiling twin (``run[metric] <=
  threshold``) for loss metrics — e.g. gating ``imbalance_pct`` or
  ``serial_fraction`` on fig11_speedup artifacts.
* count_kernel: artifacts from bench_count_kernel additionally get the
  kernel pairing check (every (dataset, threads) cell must have exactly
  one pointer/flat/vertical/auto run with identical hit totals — the
  correctness signature) and the ``--min-speedup`` shorthand, equivalent
  to ``--spec count_kernel:speedup_vs_pointer:<x>:kernel=flat``.

Usage:
    scripts/bench_compare.py BENCH_counting.json --min-speedup 1.3
    scripts/bench_compare.py BENCH_counting.json \\
        --spec count_kernel:speedup_vs_flat:2.0:kernel=vertical,dataset=deep
    scripts/bench_compare.py BENCH_foo.json --spec foo:speedup:0.9
"""

import argparse
import json
import sys

SCHEMA = "smpmine.bench.v1"

COUNT_KERNELS = ("pointer", "flat", "vertical", "auto")

COUNT_KERNEL_FIELDS = {
    "dataset": str,
    "threads": int,
    "kernel": str,
    "kernels_used": str,
    "median_ns_per_transaction": (int, float),
    "median_counting_seconds": (int, float),
    "hits": int,
    "iterations": int,
    "tile_size": int,
    "speedup_vs_pointer": (int, float),
    "speedup_vs_flat": (int, float),
    "simd_speedup_vs_scalar": (int, float),
    "auto_vs_best_fixed": (int, float),
}


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_spec(text: str):
    """name:metric:threshold[:field=value,...] -> (name, metric, x, filters)."""
    parts = text.split(":")
    if len(parts) not in (3, 4):
        fail(f"bad --spec {text!r}, want name:metric:threshold[:filters]")
    name, metric, threshold = parts[:3]
    filters = {}
    if len(parts) == 4:
        for clause in parts[3].split(","):
            if "=" not in clause:
                fail(f"bad --spec filter {clause!r}, want field=value")
            field, value = clause.split("=", 1)
            filters[field] = value
    try:
        return name, metric, float(threshold), filters
    except ValueError:
        fail(f"bad --spec threshold {threshold!r}")


def validate_generic(doc: dict) -> list:
    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("bench"), str):
        fail("bench name missing")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs[] missing or empty")
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"runs[{i}] is not an object")
    return runs


def validate_count_kernel(runs: list) -> dict:
    """Field checks plus full-matrix pairing by (dataset, threads)."""
    for i, run in enumerate(runs):
        for field, types in COUNT_KERNEL_FIELDS.items():
            if field not in run:
                fail(f"runs[{i}] missing field {field!r}")
            if not isinstance(run[field], types):
                fail(f"runs[{i}].{field} has type {type(run[field]).__name__}")
        if run["kernel"] not in COUNT_KERNELS:
            fail(f"runs[{i}].kernel is {run['kernel']!r}")
    cells = {}
    for run in runs:
        cells.setdefault((run["dataset"], run["threads"]), {})[
            run["kernel"]
        ] = run
    for key, kernels in cells.items():
        if set(kernels) != set(COUNT_KERNELS):
            fail(f"{key}: expected one run per kernel "
                 f"{list(COUNT_KERNELS)}, got {sorted(kernels)}")
        # Every kernel counts the same database: identical hit totals are
        # the correctness signature, not just a nicety.
        hits = {k: kernels[k]["hits"] for k in COUNT_KERNELS}
        if len(set(hits.values())) != 1:
            fail(f"{key}: hit counts diverge: {hits}")
    return cells


def summarize_count_kernel(cells: dict) -> float:
    print(f"{'dataset':<14} {'P':>2} {'ptr ns/txn':>11} {'flat':>9} "
          f"{'vert':>9} {'auto':>9} {'flat x':>7} {'simd x':>7}")
    worst_flat = None
    for (dataset, threads), kernels in sorted(cells.items()):
        cols = [kernels[k]["median_ns_per_transaction"]
                for k in COUNT_KERNELS]
        flat_speedup = kernels["flat"]["speedup_vs_pointer"]
        simd = kernels["flat"]["simd_speedup_vs_scalar"]
        print(f"{dataset:<14} {threads:>2} {cols[0]:>11.1f} {cols[1]:>9.1f} "
              f"{cols[2]:>9.1f} {cols[3]:>9.1f} {flat_speedup:>7.2f} "
              f"{simd:>7.2f}")
        if worst_flat is None or flat_speedup < worst_flat:
            worst_flat = flat_speedup
    return worst_flat


def apply_spec(doc: dict, runs: list, metric: str, threshold: float,
               filters: dict, ceiling: bool = False) -> None:
    """Gate ``run[metric] >= threshold`` (floor) or ``<= threshold``
    (``ceiling=True`` — the ``--max-spec`` form used for loss metrics like
    imbalance_pct / serial_fraction, where *high* is the regression)."""
    worst = None
    matched = 0
    for i, run in enumerate(runs):
        if any(str(run.get(field)) != value
               for field, value in filters.items()):
            continue
        matched += 1
        if metric not in run:
            fail(f"runs[{i}] has no metric {metric!r}")
        value = run[metric]
        if not isinstance(value, (int, float)):
            fail(f"runs[{i}].{metric} is not numeric")
        if worst is None or (value > worst if ceiling else value < worst):
            worst = value
    if matched == 0:
        fail(f"{doc['bench']}: --spec filter {filters!r} matched no runs")
    if (worst > threshold) if ceiling else (worst < threshold):
        side = "above" if ceiling else "below"
        fail(f"{doc['bench']}: worst {metric} {worst:.3g} {side} gate "
             f"{threshold:.3g} ({matched} runs matched {filters!r})")
    cmp = "<=" if ceiling else ">="
    print(f"bench_compare: {doc['bench']}: worst {metric} {worst:.3g} {cmp} "
          f"{threshold:.3g} ({matched} runs)")


def main() -> None:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("artifact", help="smpmine.bench.v1 JSON path")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="count_kernel only: fail if any flat/pointer "
                         "speedup is below this")
    ap.add_argument("--spec", action="append", default=[],
                    metavar="NAME:METRIC:THRESHOLD[:FIELD=VALUE,...]",
                    help="gate: every run of bench NAME (matching the "
                         "optional field filters) must have METRIC >= "
                         "THRESHOLD (repeatable; specs naming other "
                         "benches are ignored)")
    ap.add_argument("--max-spec", action="append", default=[],
                    metavar="NAME:METRIC:THRESHOLD[:FIELD=VALUE,...]",
                    help="ceiling gate: METRIC <= THRESHOLD (same syntax "
                         "as --spec; for loss metrics such as "
                         "imbalance_pct or serial_fraction from "
                         "fig11_speedup artifacts)")
    args = ap.parse_args()

    with open(args.artifact) as f:
        doc = json.load(f)
    runs = validate_generic(doc)

    if doc["bench"] == "count_kernel":
        cells = validate_count_kernel(runs)
        worst = summarize_count_kernel(cells)
        if args.min_speedup is not None and worst < args.min_speedup:
            fail(f"worst flat speedup {worst:.2f}x below gate "
                 f"{args.min_speedup}x")
    elif args.min_speedup is not None:
        fail(f"--min-speedup only applies to count_kernel artifacts, "
             f"this is {doc['bench']!r}")

    specs = [(parse_spec(s), False) for s in args.spec]
    specs += [(parse_spec(s), True) for s in args.max_spec]
    matched = [s for s in specs if s[0][0] == doc["bench"]]
    if specs and not matched:
        fail(f"no --spec matches bench {doc['bench']!r}")
    for (_, metric, threshold, filters), ceiling in matched:
        apply_spec(doc, runs, metric, threshold, filters, ceiling=ceiling)

    print(f"bench_compare: OK ({doc['bench']}, {len(runs)} runs)")


if __name__ == "__main__":
    main()
