#!/usr/bin/env python3
"""Validate and gate smpmine.bench.v1 artifacts.

Reads a bench-emitted JSON artifact, checks the schema, prints a summary,
and (optionally) fails when a gated metric regresses. Two gating modes:

* Generic: ``--spec name:metric:threshold`` (repeatable) gates any
  ``smpmine.bench.v1`` file whose ``bench`` field equals ``name`` — every
  run must have ``run[metric] >= threshold``. CI uses this for each bench
  smoke artifact without this script needing to know the bench's fields.
* count_kernel: artifacts from bench_count_kernel additionally get the
  pointer/flat pairing check (identical hit totals — the correctness
  signature) and the ``--min-speedup`` shorthand, equivalent to
  ``--spec count_kernel:speedup_vs_pointer:<x>`` on flat runs only.

Usage:
    scripts/bench_compare.py BENCH_counting.json --min-speedup 1.3
    scripts/bench_compare.py BENCH_foo.json --spec foo:speedup:0.9
"""

import argparse
import json
import sys

SCHEMA = "smpmine.bench.v1"

COUNT_KERNEL_FIELDS = {
    "dataset": str,
    "threads": int,
    "kernel": str,
    "median_ns_per_transaction": (int, float),
    "median_counting_seconds": (int, float),
    "hits": int,
    "iterations": int,
    "tile_size": int,
    "speedup_vs_pointer": (int, float),
}


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_spec(text: str):
    parts = text.split(":")
    if len(parts) != 3:
        fail(f"bad --spec {text!r}, want name:metric:threshold")
    name, metric, threshold = parts
    try:
        return name, metric, float(threshold)
    except ValueError:
        fail(f"bad --spec threshold {threshold!r}")


def validate_generic(doc: dict) -> list:
    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("bench"), str):
        fail("bench name missing")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs[] missing or empty")
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"runs[{i}] is not an object")
    return runs


def validate_count_kernel(runs: list) -> dict:
    """Field checks plus pointer/flat pairing by (dataset, threads)."""
    for i, run in enumerate(runs):
        for field, types in COUNT_KERNEL_FIELDS.items():
            if field not in run:
                fail(f"runs[{i}] missing field {field!r}")
            if not isinstance(run[field], types):
                fail(f"runs[{i}].{field} has type {type(run[field]).__name__}")
        if run["kernel"] not in ("pointer", "flat"):
            fail(f"runs[{i}].kernel is {run['kernel']!r}")
    pairs = {}
    for run in runs:
        pairs.setdefault((run["dataset"], run["threads"]), {})[
            run["kernel"]
        ] = run
    for key, kernels in pairs.items():
        if set(kernels) != {"pointer", "flat"}:
            fail(f"{key}: expected one pointer and one flat run, "
                 f"got {sorted(kernels)}")
        # Both kernels count the same database: identical hit totals are
        # the correctness signature, not just a nicety.
        if kernels["pointer"]["hits"] != kernels["flat"]["hits"]:
            fail(f"{key}: hit counts diverge "
                 f"(pointer {kernels['pointer']['hits']} != "
                 f"flat {kernels['flat']['hits']})")
    return pairs


def summarize_count_kernel(pairs: dict) -> float:
    print(f"{'dataset':<16} {'P':>2} {'pointer ns/txn':>15} "
          f"{'flat ns/txn':>12} {'speedup':>8}")
    worst = None
    for (dataset, threads), kernels in sorted(pairs.items()):
        ptr = kernels["pointer"]["median_ns_per_transaction"]
        flat = kernels["flat"]["median_ns_per_transaction"]
        speedup = kernels["flat"]["speedup_vs_pointer"]
        print(f"{dataset:<16} {threads:>2} {ptr:>15.1f} {flat:>12.1f} "
              f"{speedup:>8.2f}")
        if worst is None or speedup < worst:
            worst = speedup
    return worst


def apply_spec(doc: dict, runs: list, metric: str, threshold: float) -> None:
    worst = None
    for i, run in enumerate(runs):
        if metric not in run:
            fail(f"runs[{i}] has no metric {metric!r}")
        value = run[metric]
        if not isinstance(value, (int, float)):
            fail(f"runs[{i}].{metric} is not numeric")
        if worst is None or value < worst:
            worst = value
    if worst < threshold:
        fail(f"{doc['bench']}: worst {metric} {worst:.3g} below gate "
             f"{threshold:.3g}")
    print(f"bench_compare: {doc['bench']}: worst {metric} {worst:.3g} >= "
          f"{threshold:.3g}")


def main() -> None:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("artifact", help="smpmine.bench.v1 JSON path")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="count_kernel only: fail if any flat/pointer "
                         "speedup is below this")
    ap.add_argument("--spec", action="append", default=[],
                    metavar="NAME:METRIC:THRESHOLD",
                    help="gate: every run of bench NAME must have "
                         "METRIC >= THRESHOLD (repeatable; specs naming "
                         "other benches are ignored)")
    args = ap.parse_args()

    with open(args.artifact) as f:
        doc = json.load(f)
    runs = validate_generic(doc)

    if doc["bench"] == "count_kernel":
        pairs = validate_count_kernel(runs)
        worst = summarize_count_kernel(pairs)
        if args.min_speedup is not None and worst < args.min_speedup:
            fail(f"worst speedup {worst:.2f}x below gate "
                 f"{args.min_speedup}x")
    elif args.min_speedup is not None:
        fail(f"--min-speedup only applies to count_kernel artifacts, "
             f"this is {doc['bench']!r}")

    specs = [parse_spec(s) for s in args.spec]
    matched = [s for s in specs if s[0] == doc["bench"]]
    if specs and not matched:
        fail(f"no --spec matches bench {doc['bench']!r}")
    for _, metric, threshold in matched:
        apply_spec(doc, runs, metric, threshold)

    print(f"bench_compare: OK ({doc['bench']}, {len(runs)} runs)")


if __name__ == "__main__":
    main()
