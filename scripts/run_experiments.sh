#!/usr/bin/env bash
# Regenerates every table/figure reproduction and the test evidence.
#
#   scripts/run_experiments.sh [--full]
#
# --full runs the paper's dataset sizes (hours); default is the 0.1 scale
# (minutes). Outputs land in test_output.txt and bench_output.txt at the
# repository root, matching what EXPERIMENTS.md cites.
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA=()
if [[ "${1:-}" == "--full" ]]; then
  EXTRA+=(--full)
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [[ -f "$b" && -x "$b" ]] || continue
  echo "=== $b ===" | tee -a bench_output.txt
  "$b" "${EXTRA[@]}" 2>&1 | tee -a bench_output.txt
done
