#!/usr/bin/env python3
"""Self-test for perf_report.py: the diff must flag an injected regression.

Builds two synthetic smpmine.run.v2 manifests — a baseline and a copy with
the count phase slowed 3x and its LLC miss rate tripled — and checks that
``perf_report.py --diff`` (1) passes when current == baseline and (2) exits
nonzero on the doctored manifest. This proves the regression gate actually
gates, which a green CI run of the real pipeline cannot show.

Usage: scripts/perf_report_selftest.py
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

REPORT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "perf_report.py")


def counters(task_ns, cycles, instructions, refs, misses):
    return {
        "cycles": cycles, "instructions": instructions,
        "cache_references": refs, "cache_misses": misses,
        "stalled_cycles_backend": cycles // 4, "task_clock_ns": task_ns,
        "minor_faults": 10, "major_faults": 0,
        "voluntary_ctx_switches": 2, "involuntary_ctx_switches": 1,
        "max_rss_kb": 50000, "samples": 4,
        "ipc": instructions / cycles,
        "llc_miss_rate": misses / refs,
        "stall_fraction": 0.25,
    }


def manifest(count_seconds, count_miss_rate):
    refs = 1_000_000
    misses = int(refs * count_miss_rate)
    return {
        "schema": "smpmine.run.v2",
        "run": {
            "tool": "selftest",
            "dataset": {"label": "synthetic", "digest": "0" * 16,
                        "transactions": 1000, "avg_transaction_size": 10.0},
            "options": {"summary": "", "algorithm": "ccpd", "threads": 4,
                        "min_support": 0.01},
            "totals": {"f1_seconds": 0.02, "total_seconds": 0.1 + count_seconds,
                       "frequent": 100, "candidates": 500},
            "perf": {
                "backend": "hardware",
                "phases": {
                    "candgen": counters(40_000_000, 100_000_000, 180_000_000,
                                        refs, refs // 50),
                    "count": counters(int(count_seconds * 4e9),
                                      400_000_000, 700_000_000,
                                      refs, misses),
                },
            },
            "iterations": [{
                "k": 2, "candidates": 500, "pruned": 10, "frequent": 100,
                "candgen_seconds": 0.04, "remap_seconds": 0.001,
                "freeze_seconds": 0.002, "count_seconds": count_seconds,
                "reduce_seconds": 0.001, "select_seconds": 0.002,
                "perf": {},
            }],
            "metrics": {
                "counters": {}, "gauges": {},
                "histograms": {
                    "spinlock.spin_rounds": {
                        "count": 12, "sum": 600, "mean": 50.0,
                        "p50": 31, "p90": 127, "p99": 255, "max": 255,
                        "buckets": [0, 0, 0, 0, 0, 6, 3, 2, 1],
                    },
                },
            },
        },
    }


def run_report(args):
    return subprocess.run([sys.executable, REPORT, *args],
                         capture_output=True, text=True)


def check(name, ok, detail=""):
    if not ok:
        print(f"perf_report_selftest: FAIL: {name}\n{detail}",
              file=sys.stderr)
        sys.exit(1)
    print(f"perf_report_selftest: ok: {name}")


def main():
    base = manifest(count_seconds=0.2, count_miss_rate=0.02)
    same = copy.deepcopy(base)
    slow = manifest(count_seconds=0.6, count_miss_rate=0.10)

    with tempfile.TemporaryDirectory() as tmp:
        paths = {}
        for name, doc in (("base", base), ("same", same), ("slow", slow)):
            paths[name] = os.path.join(tmp, f"{name}.json")
            with open(paths[name], "w") as f:
                json.dump(doc, f)

        r = run_report([paths["base"]])
        check("render succeeds", r.returncode == 0, r.stderr)
        check("render shows count phase", "count" in r.stdout, r.stdout)
        check("render shows histogram percentiles",
              "spinlock.spin_rounds" in r.stdout and "p99<=255" in r.stdout,
              r.stdout)

        r = run_report([paths["same"], "--diff", paths["base"]])
        check("identical manifests pass the gate", r.returncode == 0,
              r.stdout + r.stderr)

        r = run_report([paths["slow"], "--diff", paths["base"]])
        check("injected 3x count slowdown is flagged", r.returncode != 0,
              r.stdout + r.stderr)
        check("regression names the count phase and time ratio",
              "count" in r.stdout and "time x3.00" in r.stdout, r.stdout)
        check("llc miss-rate increase is flagged",
              "llc miss" in r.stdout, r.stdout)

        # The gate must tolerate machine-speed noise below the floor.
        r = run_report([paths["slow"], "--diff", paths["base"],
                        "--min-phase-seconds", "1.0"])
        check("phases under --min-phase-seconds are not gated",
              r.returncode == 0, r.stdout + r.stderr)

    print("perf_report_selftest: all checks passed")


if __name__ == "__main__":
    main()
