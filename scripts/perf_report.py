#!/usr/bin/env python3
"""Render and regression-gate smpmine run manifests (schema v2/v3).

Aggregates one or more run-manifest JSON files (``smpmine.run.v2``/``.v3``
or the multi-run ``smpmine.runs.*`` bench shape; v1 renders wall times only)
into a per-phase attribution table: wall time, task-clock, IPC, LLC miss
rate, stall fraction, page faults — plus the contention histogram
percentiles (spinlock spin rounds, flat-kernel tile latency).

With ``--diff BASELINE`` the first run of each file is compared phase by
phase and the script exits nonzero when any threshold is exceeded:

* ``--max-time-ratio``   current/baseline phase wall time (default 1.25)
* ``--max-ipc-drop``     relative IPC drop, hardware backends only (0.2)
* ``--max-miss-rate-increase``  absolute LLC miss-rate increase (0.05)
* ``--min-phase-seconds``  phases faster than this are never gated (0.01)

Usage:
    scripts/perf_report.py run.json
    scripts/perf_report.py run.json --diff golden.json --max-time-ratio 1.5
"""

import argparse
import json
import sys

PHASES = ("f1", "candgen", "remap", "freeze", "vertbuild", "count",
          "reduce", "select")


def fail(msg: str) -> None:
    print(f"perf_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_runs(path: str) -> list:
    """Returns the manifest's runs as a list of run objects."""
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if schema in ("smpmine.run.v3", "smpmine.run.v2", "smpmine.run.v1"):
        return [doc["run"]]
    if schema in ("smpmine.runs.v3", "smpmine.runs.v2", "smpmine.runs.v1"):
        runs = doc.get("runs", [])
        if not runs:
            fail(f"{path}: empty runs[]")
        return runs
    fail(f"{path}: unknown schema {schema!r}")


def phase_wall_seconds(run: dict) -> dict:
    """Phase -> wall seconds, summed over iterations (f1 from totals)."""
    wall = {phase: 0.0 for phase in PHASES}
    wall["f1"] = run.get("totals", {}).get("f1_seconds", 0.0)
    for it in run.get("iterations", []):
        for phase in PHASES:
            wall[phase] += it.get(f"{phase}_seconds", 0.0)
    return wall


def phase_table(run: dict) -> dict:
    """Phase -> {wall, and the perf counter block when present}."""
    perf_phases = run.get("perf", {}).get("phases", {})
    table = {}
    for phase, wall in phase_wall_seconds(run).items():
        counters = perf_phases.get(phase, {})
        if wall == 0.0 and not counters:
            continue
        table[phase] = {"wall_seconds": wall, **counters}
    # Phases only the perf block knows about (defensive: keep them visible).
    for phase, counters in perf_phases.items():
        if phase not in table:
            table[phase] = {"wall_seconds": 0.0, **counters}
    return table


def backend(run: dict) -> str:
    return run.get("perf", {}).get("backend", "off")


def fmt(value, width, decimals=2):
    if value is None:
        return " " * (width - 1) + "-"
    return f"{value:>{width}.{decimals}f}"


def render_run(run: dict, index: int) -> None:
    label = run.get("dataset", {}).get("label", "?")
    print(f"run[{index}]: {run.get('tool', '?')} on {label} "
          f"({run.get('options', {}).get('algorithm', '?')}, "
          f"{run.get('options', {}).get('threads', '?')} threads, "
          f"perf backend: {backend(run)})")
    table = phase_table(run)
    if not table:
        print("  (no phase data)")
        return
    hw = backend(run) == "hardware"
    print(f"  {'phase':<8} {'wall s':>9} {'cpu s':>9} "
          f"{'ipc':>6} {'miss%':>6} {'stall%':>7} "
          f"{'minflt':>8} {'majflt':>7} {'ctxsw':>7}")
    ordered = [p for p in PHASES if p in table] + sorted(
        p for p in table if p not in PHASES)
    for phase in ordered:
        row = table[phase]
        cpu = row.get("task_clock_ns")
        ctxsw = None
        if "voluntary_ctx_switches" in row:
            ctxsw = (row["voluntary_ctx_switches"]
                     + row["involuntary_ctx_switches"])
        print(f"  {phase:<8} {fmt(row['wall_seconds'], 9, 3)} "
              f"{fmt(cpu / 1e9 if cpu is not None else None, 9, 3)} "
              f"{fmt(row.get('ipc') if hw else None, 6)} "
              f"{fmt(row['llc_miss_rate'] * 100 if hw and 'llc_miss_rate' in row else None, 6, 1)} "
              f"{fmt(row['stall_fraction'] * 100 if hw and 'stall_fraction' in row else None, 7, 1)} "
              f"{row.get('minor_faults', '-'):>8} "
              f"{row.get('major_faults', '-'):>7} "
              f"{ctxsw if ctxsw is not None else '-':>7}")
    histograms = run.get("metrics", {}).get("histograms", {})
    for name in sorted(histograms):
        h = histograms[name]
        if h.get("count", 0) == 0:
            continue
        print(f"  {name}: n={h['count']} mean={h['mean']:.1f} "
              f"p50<={h['p50']} p90<={h['p90']} p99<={h['p99']} "
              f"max<={h['max']}")
    print()


def diff_runs(current: dict, base: dict, args) -> int:
    """Prints the comparison; returns the number of regressions."""
    cur_table = phase_table(current)
    base_table = phase_table(base)
    both_hw = backend(current) == "hardware" and backend(base) == "hardware"
    regressions = 0
    print(f"{'phase':<8} {'base s':>9} {'cur s':>9} {'ratio':>7}  verdict")
    for phase in [p for p in PHASES if p in base_table]:
        base_row = base_table[phase]
        cur_row = cur_table.get(phase)
        if cur_row is None:
            print(f"{phase:<8} {'':>9} {'':>9} {'':>7}  MISSING in current")
            regressions += 1
            continue
        bw, cw = base_row["wall_seconds"], cur_row["wall_seconds"]
        problems = []
        # Sub-threshold phases are pure noise on small inputs: skip.
        gated = bw >= args.min_phase_seconds
        ratio = cw / bw if bw > 0 else None
        if gated and ratio is not None and ratio > args.max_time_ratio:
            problems.append(f"time x{ratio:.2f} > {args.max_time_ratio}")
        if gated and both_hw:
            base_ipc, cur_ipc = base_row.get("ipc"), cur_row.get("ipc")
            if (base_ipc and cur_ipc is not None
                    and cur_ipc < base_ipc * (1.0 - args.max_ipc_drop)):
                problems.append(
                    f"ipc {base_ipc:.2f}->{cur_ipc:.2f} "
                    f"(drop > {args.max_ipc_drop:.0%})")
            base_miss = base_row.get("llc_miss_rate")
            cur_miss = cur_row.get("llc_miss_rate")
            if (base_miss is not None and cur_miss is not None
                    and cur_miss - base_miss > args.max_miss_rate_increase):
                problems.append(
                    f"llc miss {base_miss:.3f}->{cur_miss:.3f} "
                    f"(+{cur_miss - base_miss:.3f} > "
                    f"{args.max_miss_rate_increase})")
        verdict = "REGRESSION: " + "; ".join(problems) if problems else "ok"
        if not gated:
            verdict = "ok (below --min-phase-seconds)"
        print(f"{phase:<8} {fmt(bw, 9, 3)} {fmt(cw, 9, 3)} "
              f"{fmt(ratio, 7) if ratio is not None else '      -'}  "
              f"{verdict}")
        if problems:
            regressions += 1
    base_total = base.get("totals", {}).get("total_seconds", 0.0)
    cur_total = current.get("totals", {}).get("total_seconds", 0.0)
    if base_total >= args.min_phase_seconds and base_total > 0:
        ratio = cur_total / base_total
        ok = ratio <= args.max_time_ratio
        print(f"{'TOTAL':<8} {fmt(base_total, 9, 3)} {fmt(cur_total, 9, 3)} "
              f"{fmt(ratio, 7)}  {'ok' if ok else 'REGRESSION'}")
        if not ok:
            regressions += 1
    return regressions


def main() -> None:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("manifests", nargs="+",
                    help="run-manifest JSON file(s) (smpmine.run(s).v2)")
    ap.add_argument("--diff", metavar="BASELINE",
                    help="compare manifests[0] against this baseline and "
                         "exit nonzero on regression")
    ap.add_argument("--max-time-ratio", type=float, default=1.25)
    ap.add_argument("--max-ipc-drop", type=float, default=0.2)
    ap.add_argument("--max-miss-rate-increase", type=float, default=0.05)
    ap.add_argument("--min-phase-seconds", type=float, default=0.01)
    args = ap.parse_args()

    index = 0
    for path in args.manifests:
        for run in load_runs(path):
            render_run(run, index)
            index += 1

    if args.diff:
        current = load_runs(args.manifests[0])[0]
        base = load_runs(args.diff)[0]
        regressions = diff_runs(current, base, args)
        if regressions:
            fail(f"{regressions} phase regression(s) vs {args.diff}")
        print(f"perf_report: OK (no regressions vs {args.diff})")


if __name__ == "__main__":
    main()
