#!/usr/bin/env bash
# Full correctness matrix — the gate every perf-oriented PR runs through:
#
#   1. release    : full ctest suite, optimized build
#   2. tsan       : `race`-labeled high-contention suite under ThreadSanitizer
#   3. asan-ubsan : full suite under Address+UndefinedBehaviorSanitizer
#   4. checked    : full suite with SMPMINE_ASSERT invariants, the
#                   lock-order recorder, and the phase-epoch validator
#                   compiled in (`checked` preset)
#   5. lint       : smpmine-lint rules R1-R5 + the lint fixture self-test
#                   (pure Python; clang-tidy runs in the tidy stage)
#   6. analyze    : smpmine-analyze shared-state classification, static
#                   lock-order graph, and per-phase read/write effect sets
#                   vs. their checked-in baselines, plus the analyze
#                   fixture self-test (pure Python)
#   7. tidy       : Clang rebuild with -Werror=thread-safety + clang-tidy
#                   over src/ tests/ bench/ (skipped when clang is absent)
#
# Usage: scripts/check.sh [stage...]     e.g. `scripts/check.sh tsan`
# Runs all stages by default. Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(release tsan asan-ubsan checked lint analyze tidy)

note() { printf '\n== %s ==\n' "$*"; }

configure_build_test() {  # preset, extra ctest args...
  local preset="$1"; shift
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS" "$@"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    release)
      note "release: full suite"
      configure_build_test release
      ;;
    tsan)
      note "tsan: race-labeled suite under ThreadSanitizer"
      configure_build_test tsan
      ;;
    asan-ubsan)
      note "asan-ubsan: full suite under ASan+UBSan"
      configure_build_test asan-ubsan
      ;;
    checked)
      note "checked: full suite with invariant asserts + lock-order recorder + phase-epoch validator"
      configure_build_test checked
      ;;
    lint)
      note "lint: smpmine-lint fixture self-test + zero findings on the tree"
      python3 tools/lint/lint_selftest.py
      scripts/lint.sh
      ;;
    analyze)
      note "analyze: smpmine-analyze fixture self-test + clean classification, lock-order, and phase-effects baselines"
      python3 tools/analyze/analyze_selftest.py
      python3 tools/analyze/smpmine_analyze.py
      ;;
    tidy)
      if ! command -v clang++ >/dev/null 2>&1; then
        note "tidy: SKIPPED — clang++ not found (thread-safety analysis and clang-tidy are Clang-only)"
        continue
      fi
      note "tidy: clang build with -Werror=thread-safety"
      cmake --preset tidy
      cmake --build --preset tidy -j "$JOBS"
      note "tidy: negative compile test + clang-tidy over src/ tests/ bench/"
      ctest --test-dir build/tidy -L negative --output-on-failure
      scripts/lint.sh
      ;;
    *)
      echo "unknown stage: $stage (expected release|tsan|asan-ubsan|checked|lint|analyze|tidy)" >&2
      exit 2
      ;;
  esac
done

note "all requested stages passed"
