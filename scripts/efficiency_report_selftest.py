#!/usr/bin/env python3
"""Self-test for efficiency_report.py: the gates must actually gate.

Builds synthetic smpmine.run.v3 manifests — a balanced baseline, a copy
with injected candgen imbalance (one thread doing most of the CPU work,
the loss moved from the work bin into imbalance_loss), and one whose
decomposition fractions do not sum to 1 — and checks that

1. rendering a well-formed manifest succeeds and shows the phase table,
   the critical-path line and the speedup sweep;
2. ``--diff`` passes when current == baseline;
3. the injected imbalance regression exits nonzero and names the bin;
4. the broken-identity manifest is rejected (fractions must sum to 1
   within --identity-tolerance);
5. runs under --min-wall-seconds are never gated.

Usage: scripts/efficiency_report_selftest.py
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

REPORT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "efficiency_report.py")


def phase_agg(threads_active, wall_s, cpu_sum_s, cpu_max_s, work_units=0,
              barrier_ns=0, lock_ns=0):
    return {
        "wall_max_ns": int(wall_s * 1e9),
        "wall_sum_ns": int(wall_s * 1e9) * threads_active,
        "cpu_sum_ns": int(cpu_sum_s * 1e9),
        "cpu_max_ns": int(cpu_max_s * 1e9),
        "work_units": work_units,
        "barrier_wait_ns": barrier_ns,
        "lock_wait_ns": lock_ns,
        "entries": threads_active,
        "threads_active": threads_active,
    }


def efficiency(threads, wall_s, work, serial, imbalance, contention,
               overhead):
    return {
        "threads": threads,
        "wall_seconds": wall_s,
        "budget_seconds": threads * wall_s,
        "serial_fraction": 0.1,
        "work_fraction": work,
        "serial_loss": serial,
        "imbalance_loss": imbalance,
        "contention_loss": contention,
        "overhead_loss": overhead,
        "phases": {},
    }


def manifest(threads, wall_s, imbalance_loss):
    """A run whose losses move between the work and imbalance bins as
    `imbalance_loss` grows (total held constant so identity stays 1)."""
    work = 0.7 - imbalance_loss
    eff = efficiency(threads, wall_s, work, serial=0.1,
                     imbalance=imbalance_loss, contention=0.05,
                     overhead=0.15)
    count_cpu_sum = wall_s * threads * work
    ledger = {
        "threads": threads,
        "phases": {
            "f1": phase_agg(1, wall_s * 0.1, wall_s * 0.1, wall_s * 0.1,
                            work_units=1000),
            "candgen": phase_agg(threads, wall_s * 0.2, wall_s * 0.4,
                                 wall_s * 0.3, work_units=500),
            "count": phase_agg(threads, wall_s * 0.7, count_cpu_sum,
                               wall_s * 0.65, work_units=4000,
                               barrier_ns=int(wall_s * 0.05 * 1e9)),
        },
        "per_thread": [],
    }
    return {
        "schema": "smpmine.run.v3",
        "run": {
            "tool": "selftest",
            "dataset": {"label": "synthetic", "digest": "0" * 16,
                        "transactions": 1000, "avg_transaction_size": 10.0},
            "options": {"summary": "", "algorithm": "ccpd",
                        "threads": threads, "min_support": 0.01},
            "totals": {"f1_seconds": 0.02, "total_seconds": wall_s,
                       "frequent": 100, "candidates": 500},
            "perf": {"backend": "off", "phases": {}},
            "ledger": ledger,
            "efficiency": eff,
            "iterations": [{
                "k": 2, "candidates": 500, "pruned": 10, "frequent": 100,
                "ledger": ledger,
                "efficiency": copy.deepcopy(eff),
            }],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        },
    }


def sweep(datasets=("synthetic",), thread_counts=(1, 2, 4)):
    runs = []
    for label in datasets:
        for p in thread_counts:
            # Imperfect scaling: wall shrinks by p^0.9, the shortfall
            # parked in the overhead bin.
            doc = manifest(p, 1.0 / (p ** 0.9), imbalance_loss=0.05)
            doc["run"]["dataset"]["label"] = label
            runs.append(doc["run"])
    return {"schema": "smpmine.runs.v3", "runs": runs}


def run_report(args):
    return subprocess.run([sys.executable, REPORT, *args],
                          capture_output=True, text=True)


def check(name, ok, detail=""):
    if not ok:
        print(f"efficiency_report_selftest: FAIL: {name}\n{detail}",
              file=sys.stderr)
        sys.exit(1)
    print(f"efficiency_report_selftest: ok: {name}")


def main():
    base = manifest(threads=4, wall_s=0.5, imbalance_loss=0.02)
    same = copy.deepcopy(base)
    imbalanced = manifest(threads=4, wall_s=0.5, imbalance_loss=0.25)
    broken = copy.deepcopy(base)
    broken["run"]["efficiency"]["overhead_loss"] += 0.2  # sum = 1.2
    fast = manifest(threads=4, wall_s=0.001, imbalance_loss=0.25)

    with tempfile.TemporaryDirectory() as tmp:
        paths = {}
        docs = {"base": base, "same": same, "imbalanced": imbalanced,
                "broken": broken, "fast": fast, "sweep": sweep()}
        for name, doc in docs.items():
            paths[name] = os.path.join(tmp, f"{name}.json")
            with open(paths[name], "w") as f:
                json.dump(doc, f)

        r = run_report([paths["base"]])
        check("render succeeds", r.returncode == 0, r.stdout + r.stderr)
        check("render shows the phase imbalance table",
              "candgen" in r.stdout and "work units" in r.stdout, r.stdout)
        check("render shows the critical path",
              "critical path:" in r.stdout, r.stdout)

        r = run_report([paths["sweep"]])
        check("thread sweep renders the speedup decomposition",
              r.returncode == 0 and "speedup decomposition" in r.stdout,
              r.stdout + r.stderr)

        r = run_report([paths["same"], "--diff", paths["base"]])
        check("identical manifests pass the gate", r.returncode == 0,
              r.stdout + r.stderr)

        r = run_report([paths["imbalanced"], "--diff", paths["base"]])
        check("injected imbalance regression is flagged", r.returncode != 0,
              r.stdout + r.stderr)
        check("regression names the imbalance bin",
              "imbalance_loss" in r.stdout and "REGRESSION" in r.stdout,
              r.stdout)

        r = run_report([paths["broken"]])
        check("broken fraction identity is rejected", r.returncode != 0,
              r.stdout + r.stderr)
        check("identity failure names the sum",
              "sum to" in r.stderr, r.stderr)

        r = run_report([paths["fast"], "--diff", paths["base"]])
        check("runs under --min-wall-seconds are not gated",
              r.returncode == 0, r.stdout + r.stderr)

    print("efficiency_report_selftest: all checks passed")


if __name__ == "__main__":
    main()
