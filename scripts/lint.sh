#!/usr/bin/env bash
# Static-analysis driver, two stages:
#
#   1. smpmine-lint — the project's own rules R1–R5 (guarded-by coverage,
#      threading-primitive containment, relaxed-ordering audit, hot-path
#      allocation ban, trace/stats phase-name agreement). Pure Python,
#      always runs, zero findings required.
#   2. clang-tidy  — the .clang-tidy check set over src/, tests/ and bench/,
#      using the compile database produced by the `tidy` preset so local
#      runs and CI see identical flags. Skipped with a notice when
#      clang-tidy is not installed (stage 1 still gates).
#
# Usage: scripts/lint.sh [clang-tidy args...]
#   JOBS=N           parallelism (default: nproc)
#   TIDY_BUILD_DIR   compile database dir (default: build/tidy)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${TIDY_BUILD_DIR:-build/tidy}"

echo "== smpmine-lint: project rules R1-R5 =="
python3 tools/lint/smpmine_lint.py --root .
echo "lint.sh: smpmine-lint clean"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  echo "lint.sh: clang-tidy not found on PATH — skipping the clang-tidy" >&2
  echo "stage (install clang-tools to run the .clang-tidy check set)." >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing — run" >&2
  echo "  cmake --preset tidy" >&2
  exit 2
fi

echo "== clang-tidy: src/ tests/ bench/ =="
# run-clang-tidy parallelizes when available; otherwise serial clang-tidy.
# Lint fixtures and negative-compile probes are deliberately not part of any
# build target (no compile-DB entry), so the serial path skips them.
mapfile -t SOURCES < <(find src tests bench -name '*.cpp' \
  ! -path 'tests/lint/*' ! -path 'tests/negative/*' | sort)
RUNNER="$(command -v run-clang-tidy || true)"
if [ -n "$RUNNER" ]; then
  "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" \
    -quiet "$@" "^$(pwd)/(src|tests|bench)/"
else
  "$TIDY" -p "$BUILD_DIR" --quiet "$@" "${SOURCES[@]}"
fi
echo "lint.sh: clang-tidy clean over ${#SOURCES[@]} files"
