#!/usr/bin/env bash
# clang-tidy over the library sources, using the compile database produced
# by the `tidy` preset — so local runs and CI see identical flags and the
# .clang-tidy check set is the single source of truth.
#
# Usage: scripts/lint.sh [clang-tidy args...]
#   JOBS=N           parallelism (default: nproc)
#   TIDY_BUILD_DIR   compile database dir (default: build/tidy)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${TIDY_BUILD_DIR:-build/tidy}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  echo "lint.sh: clang-tidy not found on PATH; install clang-tools to run" >&2
  echo "the static-analysis stage (the checks are defined in .clang-tidy)." >&2
  exit 127
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing — run" >&2
  echo "  cmake --preset tidy" >&2
  exit 2
fi

# run-clang-tidy parallelizes when available; otherwise serial clang-tidy.
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
RUNNER="$(command -v run-clang-tidy || true)"
if [ -n "$RUNNER" ]; then
  "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" \
    -quiet "$@" "^$(pwd)/src/"
else
  "$TIDY" -p "$BUILD_DIR" --quiet "$@" "${SOURCES[@]}"
fi
echo "lint.sh: clang-tidy clean over ${#SOURCES[@]} files"
